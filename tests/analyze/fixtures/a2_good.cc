// A2 negative fixtures: the repo's sanctioned shapes — capture-less
// coroutine lambdas taking explicit by-value parameters, and value-only
// captures for deferred plain (non-coroutine) callbacks.
#include "sim/scheduler.h"
#include "sim/task.h"

class Svc {
 public:
  void CaptureLessCoroutine(int seq) {
    // State enters the frame as explicit parameters (sim/task.h idiom).
    Spawn([](Svc* self, int s) -> sim::Task<void> {
      co_await self->Tick();
      self->Use(s);
    }(this, seq));
  }

  void DeferredValueCapture(int seq) {
    sched_->After(10, [seq]() { /* value capture, nothing to dangle */ });
  }

  sim::Task<void> Tick();
  void Use(int);

 private:
  sim::Scheduler* sched_;
};
