// A1 negative fixtures: the safe idioms the analyzer must stay silent on —
// frame-local snapshots, same-statement awaits, re-lookup after resumption,
// pointer copies of elements, and value-returning accessor loops.
#include <map>
#include <vector>

#include "sim/task.h"

class Svc {
 public:
  sim::Task<void> SnapshotThenAwait() {
    std::vector<int> keys;
    for (const auto& [k, v] : table_) keys.push_back(k);
    for (int k : keys) {  // frame-local by-value loop: safe
      co_await Tick();
      Use(k);
    }
  }

  sim::Task<void> SameStatementAwait() {
    auto it = table_.find(1);
    if (it == table_.end()) co_return;
    // The argument is read BEFORE the frame suspends: safe.
    co_await Poke(it->second);
  }

  sim::Task<void> RefindAfterAwait() {
    auto it = table_.find(1);
    if (it == table_.end()) co_return;
    it->second++;
    co_await Tick();
    it = table_.find(1);  // re-lookup after resumption: safe
    if (it != table_.end()) it->second++;
  }

  sim::Task<void> PointerCopyOfElement() {
    const int* p = vals_[0];  // copies the element (a pointer value): safe
    co_await Tick();
    Use(*p);
  }

  sim::Task<void> ValueAccessorLoop() {
    for (int k : Snapshot()) {  // value-returning call: iterates a temporary
      co_await Tick();
      Use(k);
    }
  }

  std::vector<int> Snapshot() const;
  sim::Task<void> Tick();
  sim::Task<void> Poke(int);
  void Use(int);

 private:
  std::map<int, int> table_;
  std::vector<const int*> vals_;
};
