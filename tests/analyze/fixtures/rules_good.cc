// R1-R6 negative fixtures: compliant idioms plus every `lint:allow` escape
// hatch — an allowed violation must NOT fire.
#include <cstdio>  // the include alone is fine; calling printf is not
#include <map>
#include <random>  // lint:allow(wall-clock)
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "sim/network.h"

class Svc {
 public:
  void SeededDraws() {
    uint64_t r = rng_->Uniform(100);  // the sanctioned randomness source
    (void)r;
  }

  void OrderedContainer() {
    std::map<int, int> m;
    m[1] = 2;
  }

  void AllowedUnordered() {
    std::unordered_map<int, int> scratch;  // lint:allow(unordered)
    scratch[1] = 2;
  }

  void AllowedRawRpc() {
    net_->Call<int>(7);  // lint:allow(raw-rpc)
  }

  void Logging() {
    CFS_LOG("INFO", "structured log, not a raw print");
  }

  void AllowedRawPrint() {
    printf("bench table\n");  // lint:allow(raw-print)
  }

  void ConstRefPayload(const std::vector<uint8_t>& payload) {}

  void AllowedByValue(std::vector<uint8_t> payload) {}  // lint:allow(byvalue-payload)

 private:
  sim::Network* net_;
  cfs::Rng* rng_;
};
