// A1.pooled fixtures: raw pointers to pool-recycled Envelope storage held
// live across a suspension point.  An Envelope* is a loan from the slab —
// the pool can destroy the payload and hand the node to another message
// while this coroutine is suspended.  Each marked line must produce exactly
// one A1 finding.
#include "sim/task.h"

struct Envelope;
struct EnvelopePool {
  Envelope* Make();
  void Free(Envelope*);
};

class Transport {
 public:
  sim::Task<void> EnvelopeAcrossAwait() {
    Envelope* env = pool_.Make();  // analyze-expect(A1)
    co_await Tick();
    pool_.Free(env);
  }

  sim::Task<void> EnvelopeFromArgAcrossAwait(Envelope* incoming) {
    Envelope* held = incoming;  // analyze-expect(A1)
    co_await Tick();
    Deliver(held);
  }

  sim::Task<void> Tick();
  void Deliver(Envelope*);

 private:
  EnvelopePool pool_;
};
