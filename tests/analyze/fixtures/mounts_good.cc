// Multi-mount client, safe twins: snapshot the mount names by value, re-look
// the context up after every resumption, and re-check mounted() before use —
// the idiom client.cc's refresh loops follow.  Zero findings expected.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/task.h"

class MountContext {
 public:
  sim::Task<void> RefreshVolume();
  bool mounted() const;
  void Touch();
};

class Client {
 public:
  sim::Task<void> RefreshAllSnapshot() {
    std::vector<std::string> names;
    for (const auto& [name, m] : mounts_) names.push_back(name);
    for (const std::string& name : names) {  // frame-local by-value loop
      MountContext* m = FindMount(name);  // re-lookup each round
      if (m == nullptr || !m->mounted()) continue;
      co_await m->RefreshVolume();
    }
  }

  sim::Task<void> LookupPerAwait() {
    auto it = mounts_.find("vol");
    if (it == mounts_.end()) co_return;
    it->second->Touch();
    co_await Tick();
    it = mounts_.find("vol");  // re-lookup after resumption
    if (it != mounts_.end() && it->second->mounted()) it->second->Touch();
  }

  void ScheduleRefreshTick(int seq) {
    sched_->After(1000, [seq]() { /* value capture only */ });
  }

  void SpawnRefresh(const std::string& name) {
    // State enters the frame as explicit by-value parameters; the coroutine
    // re-resolves the mount and re-checks liveness after entry.
    Spawn([](Client* self, std::string n) -> sim::Task<void> {
      MountContext* m = self->FindMount(n);
      if (m == nullptr || !m->mounted()) co_return;
      co_await m->RefreshVolume();
    }(this, name));
  }

  MountContext* FindMount(const std::string& name);
  sim::Task<void> Tick();

 private:
  sim::Scheduler* sched_;
  std::map<std::string, std::unique_ptr<MountContext>> mounts_;
};
