// Multi-mount client hazards: MountContext pointers reached through the
// mounts_ table held live across a suspension.  Unmount() can retire (and a
// later Mount() replace) the context at any co_await, so every marked shape
// is a use-after-retire waiting for a teardown test to find it.
#include <map>
#include <memory>
#include <string>

#include "sim/scheduler.h"
#include "sim/task.h"

class MountContext {
 public:
  sim::Task<void> RefreshVolume();
  bool mounted() const;
  void Touch();
};

class Client {
 public:
  sim::Task<void> RefreshAllAcrossAwait() {
    for (const auto& [name, m] : mounts_) {  // analyze-expect(A1)
      co_await m->RefreshVolume();
    }
  }

  sim::Task<void> LookupThenAwait() {
    auto it = mounts_.find("vol");  // analyze-expect(A1)
    if (it == mounts_.end()) co_return;
    co_await it->second->RefreshVolume();
    it->second->Touch();
  }

  void ScheduleRefreshTick() {
    // Deferred callback outliving any mount it touches via this.
    sched_->After(1000, [this]() { refresh_ticks_++; });  // analyze-expect(A2)
  }

  void SpawnRefresh(MountContext* m) {
    Spawn([&m]() -> sim::Task<void> {  // analyze-expect(A2)
      co_await m->RefreshVolume();
    }());
  }

 private:
  sim::Scheduler* sched_;
  std::map<std::string, std::unique_ptr<MountContext>> mounts_;
  int refresh_ticks_ = 0;
};
