// A3 fixtures: nondeterminism escapes — address-dependent container
// ordering, pointer-to-integer laundering, and order-sensitive float
// accumulation feeding decisions.
#include <map>
#include <set>
#include <typeindex>
#include <vector>

struct Conn {
  int id;
};

class Svc {
 public:
  void PointerKeyedMap() {
    std::map<Conn*, int> by_conn_;  // analyze-expect(A3)
    by_conn_[nullptr] = 0;
  }

  void TypeIndexKeyedSet() {
    std::set<std::type_index> seen_;  // analyze-expect(A3)
  }

  unsigned long PointerAsInt(Conn* c) {
    return reinterpret_cast<unsigned long>(c);  // analyze-expect(A3)
  }

  double FloatAccumulation(const std::vector<double>& xs) {
    double sum = 0;
    for (double x : xs) {
      sum += x;  // analyze-expect(A3)
    }
    return sum;
  }
};
