// Health-telemetry fixtures (good twins): the sanctioned shapes
// src/harness/cluster.cc actually uses — a synchronous std::function
// observer (invoked inline by the instrumented code, never deferred, with
// owned value captures), a capture-less collector coroutine taking explicit
// parameters, and stable-name target keys.
#include <functional>
#include <map>
#include <string>

#include "sim/scheduler.h"
#include "sim/task.h"

struct Series {
  void Observe(unsigned long t, unsigned long v);
};

class Disk {
 public:
  void set_op_observer(std::function<void(unsigned long)> f) {
    observer_ = std::move(f);
  }

 private:
  std::function<void(unsigned long)> observer_;
};

class HealthCollector {
 public:
  void SynchronousObserver(Disk* d) {
    std::string target = "n0.disk0";
    // Not a deferral call and not a coroutine: the observer runs inline
    // inside the disk op, while the collector object is alive, and owns its
    // captures by value.
    d->set_op_observer([this, target = std::move(target)](unsigned long lat) {
      Record(target, lat);
    });
  }

  void CaptureLessCollector() {
    // State enters the coroutine frame as explicit parameters.
    Spawn([](HealthCollector* self) -> sim::Task<void> {
      co_await self->Tick();
      self->Sample();
    }(this));
  }

  void StableKeyedTargets() {
    std::map<std::string, Series> by_target;
    by_target["n0.disk0"] = Series{};
  }

  sim::Task<void> Tick();
  void Sample();
  void Record(const std::string& target, unsigned long lat);
};
