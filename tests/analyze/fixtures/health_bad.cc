// Health-telemetry fixtures (bad twins): the hazard shapes the health layer
// must never take — collection callbacks whose captures outlive the frame
// (deferred or coroutine), and address-dependent target keys that would make
// scoring order (and the event log) nondeterministic.
#include <map>

#include "sim/scheduler.h"
#include "sim/task.h"

struct Series {
  void Observe(unsigned long t, unsigned long v);
};

struct Disk {
  int id;
};

class HealthCollector {
 public:
  void DeferredSampleRefCapture() {
    Series local;
    sched_->After(1000000, [&local]() { local.Observe(0, 0); });  // analyze-expect(A2)
  }

  void DeferredSampleThisCapture() {
    sched_->After(1000000, [this]() { Sample(); });  // analyze-expect(A2)
  }

  void CollectorCoroutineCaptures() {
    Spawn([this]() -> sim::Task<void> {  // analyze-expect(A2)
      co_await Tick();
      Sample();
    }());
  }

  void PointerKeyedTargets(Disk* d) {
    std::map<Disk*, Series> by_disk;  // analyze-expect(A3)
    by_disk[d] = Series{};
  }

  sim::Task<void> Tick();
  void Sample();

 private:
  sim::Scheduler* sched_;
};
