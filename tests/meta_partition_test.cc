// MetaPartition state-machine tests: command apply semantics, inode id
// allocation, nlink thresholds, free list, snapshot round-trip, range
// splitting (Algorithm 1), memory accounting, fsck orphan detection.
#include <gtest/gtest.h>

#include "meta/meta_partition.h"
#include "sim/network.h"

namespace cfs::meta {
namespace {

class MetaPartitionFixture : public ::testing::Test {
 protected:
  MetaPartitionFixture() : net_(&sched_) {
    host_ = net_.AddHost();
    MetaPartitionConfig cfg;
    cfg.id = 1;
    cfg.volume = 1;
    cfg.start = 1;
    mp_ = std::make_unique<MetaPartition>(cfg, host_);
  }

  ApplyResult Apply(std::string cmd) {
    mp_->Apply(++index_, cmd);
    auto res = mp_->TakeResult(index_);
    EXPECT_TRUE(res.has_value());
    return res.value_or(ApplyResult{});
  }

  Inode CreateFile() {
    auto res = Apply(MetaPartition::EncodeCreateInode(FileType::kFile, "", 0));
    EXPECT_TRUE(res.status.ok());
    return res.inode;
  }

  sim::Scheduler sched_;
  sim::Network net_;
  sim::Host* host_;
  std::unique_ptr<MetaPartition> mp_;
  raft::Index index_ = 0;
};

TEST_F(MetaPartitionFixture, CreateInodeAllocatesSmallestUnusedId) {
  Inode a = CreateFile();
  Inode b = CreateFile();
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(mp_->max_inode_id(), 2u);
  EXPECT_EQ(a.nlink, 1u);
}

TEST_F(MetaPartitionFixture, DirectoryStartsWithNlinkTwo) {
  auto res = Apply(MetaPartition::EncodeCreateInode(FileType::kDir, "", 0));
  EXPECT_EQ(res.inode.nlink, 2u);
  EXPECT_TRUE(res.inode.IsDir());
}

TEST_F(MetaPartitionFixture, SymlinkKeepsTarget) {
  auto res = Apply(MetaPartition::EncodeCreateInode(FileType::kSymlink, "/target/path", 0));
  EXPECT_EQ(res.inode.link_target, "/target/path");
}

TEST_F(MetaPartitionFixture, UnlinkFileMarksDeletedAtZero) {
  Inode f = CreateFile();
  auto res = Apply(MetaPartition::EncodeUnlinkInode(f.id));
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.value, 0u);
  EXPECT_TRUE(res.inode.IsDeleted());
  ASSERT_EQ(mp_->free_list().size(), 1u);
  EXPECT_EQ(mp_->free_list().front(), f.id);
}

TEST_F(MetaPartitionFixture, LinkedFileSurvivesOneUnlink) {
  Inode f = CreateFile();
  EXPECT_TRUE(Apply(MetaPartition::EncodeLinkInode(f.id)).status.ok());  // nlink=2
  auto res = Apply(MetaPartition::EncodeUnlinkInode(f.id));
  EXPECT_EQ(res.value, 1u);
  EXPECT_FALSE(res.inode.IsDeleted());
  EXPECT_TRUE(mp_->free_list().empty());
}

TEST_F(MetaPartitionFixture, DirectoryDeletedAtNlinkTwo) {
  auto dir = Apply(MetaPartition::EncodeCreateInode(FileType::kDir, "", 0)).inode;
  // One unlink takes a fresh dir (nlink=2) to 1 <= threshold 2 -> deleted.
  auto res = Apply(MetaPartition::EncodeUnlinkInode(dir.id));
  EXPECT_TRUE(res.inode.IsDeleted());
}

TEST_F(MetaPartitionFixture, LinkToDeletedInodeFails) {
  Inode f = CreateFile();
  (void)Apply(MetaPartition::EncodeUnlinkInode(f.id));
  auto res = Apply(MetaPartition::EncodeLinkInode(f.id));
  EXPECT_TRUE(res.status.IsNotFound());
}

TEST_F(MetaPartitionFixture, EvictRemovesInodeAndFreeListEntry) {
  Inode f = CreateFile();
  (void)Apply(MetaPartition::EncodeUnlinkInode(f.id));
  auto res = Apply(MetaPartition::EncodeEvictInode(f.id));
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(mp_->GetInode(f.id), nullptr);
  EXPECT_TRUE(mp_->free_list().empty());
  // Idempotent.
  EXPECT_TRUE(Apply(MetaPartition::EncodeEvictInode(f.id)).status.ok());
}

TEST_F(MetaPartitionFixture, DentryCreateLookupDelete) {
  Inode f = CreateFile();
  Dentry d{kRootInode, "file.txt", f.id, FileType::kFile};
  EXPECT_TRUE(Apply(MetaPartition::EncodeCreateDentry(d)).status.ok());
  const Dentry* found = mp_->Lookup(kRootInode, "file.txt");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->inode, f.id);
  // Duplicate create rejected.
  EXPECT_TRUE(Apply(MetaPartition::EncodeCreateDentry(d)).status.IsAlreadyExists());
  auto res = Apply(MetaPartition::EncodeDeleteDentry(kRootInode, "file.txt"));
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.dentry.inode, f.id);  // returned for the follow-up unlink
  EXPECT_EQ(mp_->Lookup(kRootInode, "file.txt"), nullptr);
}

TEST_F(MetaPartitionFixture, DeleteMissingDentryIsNotFound) {
  EXPECT_TRUE(Apply(MetaPartition::EncodeDeleteDentry(kRootInode, "nope")).status.IsNotFound());
}

TEST_F(MetaPartitionFixture, ReadDirReturnsOnlyThatParent) {
  for (int i = 0; i < 5; i++) {
    Inode f = CreateFile();
    Dentry d{kRootInode, "a" + std::to_string(i), f.id, FileType::kFile};
    (void)Apply(MetaPartition::EncodeCreateDentry(d));
  }
  Inode sub = Apply(MetaPartition::EncodeCreateInode(FileType::kDir, "", 0)).inode;
  Dentry d{sub.id, "inner", CreateFile().id, FileType::kFile};
  (void)Apply(MetaPartition::EncodeCreateDentry(d));

  auto root_list = mp_->ReadDir(kRootInode);
  EXPECT_EQ(root_list.size(), 5u);
  auto sub_list = mp_->ReadDir(sub.id);
  ASSERT_EQ(sub_list.size(), 1u);
  EXPECT_EQ(sub_list[0].name, "inner");
}

TEST_F(MetaPartitionFixture, BatchInodeGetSkipsMissing) {
  Inode a = CreateFile(), b = CreateFile();
  auto got = mp_->BatchInodeGet({a.id, 999, b.id});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, a.id);
  EXPECT_EQ(got[1].id, b.id);
}

TEST_F(MetaPartitionFixture, AppendExtentRecordsLocationAndSize) {
  Inode f = CreateFile();
  ExtentKey key{0, 7, 42, 0, 1024};
  auto res = Apply(MetaPartition::EncodeAppendExtent(f.id, key, 1024));
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.inode.size, 1024u);
  ASSERT_EQ(res.inode.extents.size(), 1u);
  EXPECT_EQ(res.inode.extents[0], key);
  // Retried command (same key) is idempotent.
  res = Apply(MetaPartition::EncodeAppendExtent(f.id, key, 1024));
  EXPECT_EQ(res.inode.extents.size(), 1u);
}

TEST_F(MetaPartitionFixture, TruncateDropsExtentsBeyondSize) {
  Inode f = CreateFile();
  (void)Apply(MetaPartition::EncodeAppendExtent(f.id, ExtentKey{0, 1, 1, 0, 1000}, 1000));
  (void)Apply(MetaPartition::EncodeAppendExtent(f.id, ExtentKey{1000, 1, 2, 0, 1000}, 2000));
  auto res = Apply(MetaPartition::EncodeTruncate(f.id, 500));
  EXPECT_TRUE(res.status.ok());
  const Inode* ino = mp_->GetInode(f.id);
  ASSERT_NE(ino, nullptr);
  EXPECT_EQ(ino->size, 500u);
  ASSERT_EQ(ino->extents.size(), 1u);
  EXPECT_EQ(ino->extents[0].extent_id, 1u);
}

TEST_F(MetaPartitionFixture, SetEndCutsInodeRange) {
  CreateFile();  // id 1
  CreateFile();  // id 2
  auto res = Apply(MetaPartition::EncodeSetEnd(100));
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(mp_->config().end, 100u);
  // Below maxInodeID: rejected.
  res = Apply(MetaPartition::EncodeSetEnd(1));
  EXPECT_FALSE(res.status.ok());
}

TEST_F(MetaPartitionFixture, RangeExhaustionStopsAllocation) {
  (void)Apply(MetaPartition::EncodeSetEnd(3));
  CreateFile();  // 1
  CreateFile();  // 2
  CreateFile();  // 3
  auto res = Apply(MetaPartition::EncodeCreateInode(FileType::kFile, "", 0));
  EXPECT_TRUE(res.status.IsNoSpace());
  EXPECT_TRUE(mp_->IsFull());
}

TEST_F(MetaPartitionFixture, SnapshotRoundTripPreservesEverything) {
  for (int i = 0; i < 20; i++) {
    Inode f = CreateFile();
    Dentry d{kRootInode, "f" + std::to_string(i), f.id, FileType::kFile};
    (void)Apply(MetaPartition::EncodeCreateDentry(d));
  }
  (void)Apply(MetaPartition::EncodeUnlinkInode(3));
  (void)Apply(MetaPartition::EncodeSetEnd(1000));
  std::string snap = mp_->TakeSnapshot();

  MetaPartitionConfig cfg;
  cfg.id = 1;
  MetaPartition copy(cfg, host_);
  copy.Restore(snap);
  EXPECT_EQ(copy.inode_count(), 20u);
  EXPECT_EQ(copy.dentry_count(), 20u);
  EXPECT_EQ(copy.max_inode_id(), 20u);
  EXPECT_EQ(copy.config().end, 1000u);
  ASSERT_EQ(copy.free_list().size(), 1u);
  EXPECT_EQ(copy.free_list().front(), 3u);
  const Dentry* d = copy.Lookup(kRootInode, "f7");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->inode, 8u);
  // New allocations continue after the snapshot's maxInodeID.
  copy.Apply(1, MetaPartition::EncodeCreateInode(FileType::kFile, "", 0));
  auto res = copy.TakeResult(1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->inode.id, 21u);
}

TEST_F(MetaPartitionFixture, MemoryAccountingTracksHostUsage) {
  uint64_t before = host_->memory_used();
  Inode f = CreateFile();
  EXPECT_GT(host_->memory_used(), before);
  (void)Apply(MetaPartition::EncodeUnlinkInode(f.id));
  (void)Apply(MetaPartition::EncodeEvictInode(f.id));
  EXPECT_EQ(host_->memory_used(), before);
}

TEST_F(MetaPartitionFixture, FsckFindsOrphanInodes) {
  Inode linked = CreateFile();
  Dentry d{kRootInode, "linked", linked.id, FileType::kFile};
  (void)Apply(MetaPartition::EncodeCreateDentry(d));
  Inode orphan = CreateFile();  // no dentry ever created: orphan
  auto orphans = mp_->FindOrphanInodes();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], orphan.id);
}

TEST_F(MetaPartitionFixture, ResultsPrunedBeyondCapacity) {
  for (int i = 0; i < 5000; i++) {
    mp_->Apply(++index_, MetaPartition::EncodeCreateInode(FileType::kFile, "", 0));
  }
  EXPECT_FALSE(mp_->TakeResult(1).has_value());         // pruned
  EXPECT_TRUE(mp_->TakeResult(index_).has_value());     // recent
}

}  // namespace
}  // namespace cfs::meta
