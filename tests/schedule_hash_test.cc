// Before/after schedule-hash equivalence: the simulator hot-path rebuild
// (timer-wheel scheduler, pooled events, zero-copy payload buffers, flat
// containers — DESIGN.md "Simulator performance") promises to change *how*
// events are stored and dispatched without changing *which* events execute
// or in what order. That promise is pinned here with golden hashes: the
// constants below were captured from the pre-rebuild engine
// (std::priority_queue + std::function + per-hop payload copies) on the
// exact scenarios run by this test, and the rebuilt engine must reproduce
// them bit for bit.
//
// The trace hash folds in every executed event (time, seq) and every network
// message (from, to, wire bytes, payload RTTI name, delivery time), so any
// reordering, dropped/extra event, RNG-stream shift, or wire-size change
// trips it. The hash does NOT depend on wall-clock, optimization level or
// sanitizers, and the RTTI names feeding it are fixed by the Itanium C++ ABI
// both gcc and clang use — which is what makes a cross-build golden value
// meaningful.
//
// If a future change legitimately alters the schedule (new message, new
// timer, different batching policy), re-capture the constants:
//   CFS_PRINT_SCHEDULE_HASH=1 ./tests/schedule_hash_test
// and update kGolden below — in the same commit that explains why the
// schedule moved.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "harness/cluster.h"

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;

ClusterOptions Opts(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = seed;
  opts.client.rpc_timeout = 300 * kMsec;
  return opts;
}

Client* BootAndMount(Cluster& cluster) {
  auto st = RunTask(cluster.sched(), cluster.Start());
  if (!st || !st->ok()) return nullptr;
  st = RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8));
  if (!st || !st->ok()) return nullptr;
  auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
  if (!c || !c->ok()) return nullptr;
  return **c;
}

/// Mixed metadata + data workload: creates, opens, multi-packet writes
/// (exercises the chain-replication path end to end), reads, readdir.
uint64_t WorkloadScenario() {
  Cluster cluster(Opts(11));
  Client* client = BootAndMount(cluster);
  if (client == nullptr) return 0;
  for (int i = 0; i < 6; i++) {
    auto f = RunTask(cluster.sched(),
                     client->Create(kRootInode, "f" + std::to_string(i), FileType::kFile));
    if (!f || !f->ok()) return 0;
    (void)RunTask(cluster.sched(), client->Open((*f)->id));
    (void)RunTask(cluster.sched(),
                  client->Write((*f)->id, 0, std::string(192 * kKiB, 'd')));
    (void)RunTask(cluster.sched(), client->Read((*f)->id, 0, 64 * kKiB));
    (void)RunTask(cluster.sched(), client->Close((*f)->id));
  }
  (void)RunTask(cluster.sched(), client->ReadDir(kRootInode));
  cluster.sched().RunFor(2 * kSec);
  return cluster.sched().trace_hash();
}

/// Crash + recovery: raft re-election, WAL replay, extent realignment — the
/// paths most sensitive to timer and log-entry handling.
uint64_t CrashRestartScenario() {
  Cluster cluster(Opts(23));
  Client* client = BootAndMount(cluster);
  if (client == nullptr) return 0;
  auto f = RunTask(cluster.sched(),
                   client->Create(kRootInode, "crashy.bin", FileType::kFile));
  if (!f || !f->ok()) return 0;
  (void)RunTask(cluster.sched(), client->Open((*f)->id));
  (void)RunTask(cluster.sched(),
                client->Write((*f)->id, 0, std::string(128 * kKiB, 'a')));
  cluster.CrashNode(2);
  cluster.sched().RunFor(2 * kSec);
  (void)RunTask(cluster.sched(),
                client->Write((*f)->id, 128 * kKiB, std::string(64 * kKiB, 'b')));
  (void)RunTaskVoid(cluster.sched(), cluster.RestartNode(2));
  cluster.sched().RunFor(3 * kSec);
  (void)RunTask(cluster.sched(), client->Read((*f)->id, 0, 192 * kKiB));
  return cluster.sched().trace_hash();
}

/// Message loss: retries, timeouts firing for real, RNG-driven drops — the
/// scenario that catches any change to timeout-event scheduling (the rebuilt
/// scheduler must keep scheduling no-op timeout events; cancelling them
/// would shift every later (time, seq) pair).
uint64_t MessageLossScenario() {
  Cluster cluster(Opts(37));
  Client* client = BootAndMount(cluster);
  if (client == nullptr) return 0;
  cluster.net().SetDropProbability(0.05);
  for (int i = 0; i < 8; i++) {
    (void)RunTask(cluster.sched(),
                  client->Create(kRootInode, "lossy" + std::to_string(i), FileType::kFile));
  }
  cluster.net().SetDropProbability(0);
  cluster.sched().RunFor(2 * kSec);
  return cluster.sched().trace_hash();
}

struct GoldenCase {
  const char* name;
  uint64_t (*run)();
  uint64_t expected;  // captured from the pre-rebuild engine
};

// Golden values from the seed engine (priority-queue scheduler, copying
// payload path) — see the file comment for the capture procedure.
const GoldenCase kGolden[] = {
    {"workload", WorkloadScenario, 0xc02dc36c36659541ull},
    {"crash_restart", CrashRestartScenario, 0xdb08192c72b68afbull},
    {"message_loss", MessageLossScenario, 0xfda662d604cafc14ull},
};

TEST(ScheduleHash, MatchesPreRebuildGolden) {
  const bool print = std::getenv("CFS_PRINT_SCHEDULE_HASH") != nullptr;
  for (const GoldenCase& g : kGolden) {
    uint64_t h = g.run();
    ASSERT_NE(h, 0u) << g.name << ": scenario failed to boot";
    if (print) {
      std::printf("schedule_hash %s 0x%016llx\n", g.name,
                  static_cast<unsigned long long>(h));
    } else {
      EXPECT_EQ(h, g.expected)
          << g.name << ": same-seed schedule diverged from the pre-rebuild "
          << "engine. If this change intentionally alters the schedule, "
          << "re-capture with CFS_PRINT_SCHEDULE_HASH=1 and update kGolden.";
    }
  }
}

}  // namespace
}  // namespace cfs::harness
