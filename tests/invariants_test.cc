// Invariant-checker tests (see common/check.h and DESIGN.md "Invariant
// catalog"). For every subsystem: a positive test proving the checker stays
// quiet on healthy state, and a negative test seeding a deliberate
// violation and asserting the checker fires — a checker that cannot fail
// verifies nothing.
#include <gtest/gtest.h>

#include "datanode/data_partition.h"
#include "harness/cluster.h"
#include "meta/meta_partition.h"
#include "raft/invariants.h"
#include "sim/network.h"
#include "storage/extent_store.h"

namespace cfs {
namespace {

using meta::kRootInode;

// --- Raft protocol checker ---------------------------------------------------

raft::ReplicaSnapshot MakeReplica(sim::NodeId node, raft::Term term,
                                  std::vector<std::pair<raft::Term, std::string>> log,
                                  raft::Index commit, bool leader = false) {
  raft::ReplicaSnapshot r;
  r.node = node;
  r.term = term;
  r.commit = commit;
  r.applied = commit;
  r.is_leader = leader;
  raft::Index index = 1;
  for (auto& [t, data] : log) {
    raft::LogEntry e;
    e.index = index++;
    e.term = t;
    e.data = cfs::Buffer::CopyOf(data);
    r.entries.push_back(std::move(e));
  }
  return r;
}

TEST(RaftInvariants, ConsistentGroupPasses) {
  std::vector<raft::ReplicaSnapshot> group;
  group.push_back(MakeReplica(1, 2, {{1, "a"}, {2, "b"}}, 2, /*leader=*/true));
  group.push_back(MakeReplica(2, 2, {{1, "a"}, {2, "b"}}, 2));
  group.push_back(MakeReplica(3, 2, {{1, "a"}}, 1));  // lagging follower
  InvariantReport report;
  raft::CheckRaftGroup(group, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RaftInvariants, TwoLeadersInOneTermFires) {
  std::vector<raft::ReplicaSnapshot> group;
  group.push_back(MakeReplica(1, 3, {{3, "a"}}, 1, /*leader=*/true));
  group.push_back(MakeReplica(2, 3, {{3, "a"}}, 1, /*leader=*/true));
  InvariantReport report;
  raft::CheckRaftGroup(group, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("both leaders in term 3"), std::string::npos)
      << report.ToString();
}

TEST(RaftInvariants, LogMatchingViolationFires) {
  std::vector<raft::ReplicaSnapshot> group;
  group.push_back(MakeReplica(1, 2, {{1, "a"}, {2, "payload-x"}}, 1));
  group.push_back(MakeReplica(2, 2, {{1, "a"}, {2, "payload-y"}}, 1));
  InvariantReport report;
  raft::CheckRaftGroup(group, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("disagree on data at index 2"), std::string::npos)
      << report.ToString();
}

TEST(RaftInvariants, CommitBeyondLastIndexFires) {
  auto r = MakeReplica(1, 1, {{1, "a"}}, 1);
  r.commit = 9;  // only one entry exists
  InvariantReport report;
  raft::CheckRaftGroup({r}, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("commit index 9 > last log index 1"),
            std::string::npos)
      << report.ToString();
}

TEST(RaftInvariants, TermRegressionInLogFires) {
  auto r = MakeReplica(1, 5, {{3, "a"}, {2, "b"}}, 0);
  InvariantReport report;
  raft::CheckRaftGroup({r}, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("term regressed"), std::string::npos)
      << report.ToString();
}

TEST(RaftInvariants, CommittedPrefixTermDisagreementFires) {
  // Both replicas consider index 1 committed but store different terms for
  // it — committed state may never diverge.
  std::vector<raft::ReplicaSnapshot> group;
  group.push_back(MakeReplica(1, 3, {{1, "a"}}, 1));
  group.push_back(MakeReplica(2, 3, {{2, "b"}}, 1));
  InvariantReport report;
  raft::CheckRaftGroup(group, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("committed entry term"), std::string::npos)
      << report.ToString();
}

// --- Extent store checker ----------------------------------------------------

class ExtentInvariants : public ::testing::Test {
 protected:
  ExtentInvariants() : net_(&sched_) {
    host_ = net_.AddHost();
    store_ = std::make_unique<storage::ExtentStore>(host_->disk(0));
  }

  void Fill() {
    sim::Spawn([](storage::ExtentStore* store) -> sim::Task<void> {
      storage::ExtentId id = store->CreateExtent();
      (void)co_await store->Append(id, 0, std::string(4096, 'x'));
      (void)co_await store->WriteSmall(std::string(100, 's'));
    }(store_.get()));
    sched_.Run();
  }

  sim::Scheduler sched_;
  sim::Network net_;
  sim::Host* host_;
  std::unique_ptr<storage::ExtentStore> store_;
};

TEST_F(ExtentInvariants, HealthyStorePasses) {
  Fill();
  InvariantReport report;
  store_->CheckInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(ExtentInvariants, CachedCrcCorruptionFires) {
  Fill();
  storage::Extent* e = store_->MutableExtentForTest(1);
  ASSERT_NE(e, nullptr);
  e->crc ^= 0xdeadbeef;  // silent cache corruption
  InvariantReport report;
  store_->CheckInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("cached CRC disagrees"), std::string::npos)
      << report.ToString();
}

TEST_F(ExtentInvariants, PunchHoleBookkeepingDriftFires) {
  Fill();
  storage::Extent* e = store_->MutableExtentForTest(1);
  ASSERT_NE(e, nullptr);
  e->punched_bytes += 512;  // punched bytes no longer equal the hole sum
  InvariantReport report;
  store_->CheckInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("punched_bytes"), std::string::npos)
      << report.ToString();
}

// --- Data partition checker --------------------------------------------------

class DataPartitionInvariants : public ::testing::Test {
 protected:
  DataPartitionInvariants() : net_(&sched_) {
    host_ = net_.AddHost();
    raft_ = std::make_unique<raft::RaftHost>(&net_, host_);
    data::DataPartitionConfig cfg;
    cfg.id = 1;
    cfg.replicas = {host_->id()};
    part_ = std::make_unique<data::DataPartition>(cfg, &net_, host_, raft_.get());
    EXPECT_TRUE(part_->store().ImportExtent(7, 64 * kKiB, /*tiny=*/false).ok());
  }

  sim::Scheduler sched_;
  sim::Network net_;
  sim::Host* host_;
  std::unique_ptr<raft::RaftHost> raft_;
  std::unique_ptr<data::DataPartition> part_;
};

TEST_F(DataPartitionInvariants, HealthyPartitionPasses) {
  part_->set_committed(7, 64 * kKiB);
  InvariantReport report;
  part_->CheckInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(DataPartitionInvariants, CommittedBeyondLocalExtentFires) {
  // The committed offset is "the largest offset committed by ALL replicas"
  // (§2.2.5); it can never exceed any replica's local extent size.
  part_->set_committed(7, 128 * kKiB);
  InvariantReport report;
  part_->CheckInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("committed offset"), std::string::npos)
      << report.ToString();
}

TEST_F(DataPartitionInvariants, UnmergedDurableRangeFires) {
  // MarkDurable must fold any range touching the committed prefix into it;
  // a range at or below committed left in the map means the fold is broken.
  part_->MarkDurable(7, 8 * kKiB, 16 * kKiB);  // beyond committed: buffered
  part_->set_committed(7, 32 * kKiB);          // forced baseline supersedes it
  InvariantReport clean;
  part_->CheckInvariants(&clean);
  EXPECT_TRUE(clean.ok()) << clean.ToString();

  part_->MarkDurable(7, 40 * kKiB, 48 * kKiB);
  part_->set_committed(7, 44 * kKiB);  // cuts INTO the range: must be pruned
  InvariantReport report;
  part_->CheckInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("not merged into committed prefix"),
            std::string::npos)
      << report.ToString();
}

// --- Meta partition checker --------------------------------------------------

class MetaPartitionInvariants : public ::testing::Test {
 protected:
  MetaPartitionInvariants() : net_(&sched_) {
    host_ = net_.AddHost();
    meta::MetaPartitionConfig cfg;
    cfg.id = 1;
    cfg.volume = 1;
    cfg.create_root = true;
    part_ = std::make_unique<meta::MetaPartition>(cfg, host_);
  }

  sim::Scheduler sched_;
  sim::Network net_;
  sim::Host* host_;
  std::unique_ptr<meta::MetaPartition> part_;
};

TEST_F(MetaPartitionInvariants, HealthyPartitionPasses) {
  part_->Apply(1, meta::MetaPartition::EncodeCreateInode(meta::FileType::kFile, "", 0));
  meta::Dentry d{kRootInode, "f", 2, meta::FileType::kFile};
  part_->Apply(2, meta::MetaPartition::EncodeCreateDentry(d));
  InvariantReport report;
  part_->CheckInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(MetaPartitionInvariants, NlinkBelowFloorFires) {
  part_->Apply(1, meta::MetaPartition::EncodeCreateInode(meta::FileType::kFile, "", 0));
  meta::Inode* ino = part_->MutableInodeForTest(2);
  ASSERT_NE(ino, nullptr);
  ino->nlink = 0;  // live file with zero links and no delete mark
  InvariantReport report;
  part_->CheckInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("below its floor"), std::string::npos)
      << report.ToString();
}

TEST_F(MetaPartitionInvariants, DeletedInodeMissingFromFreeListFires) {
  part_->Apply(1, meta::MetaPartition::EncodeCreateInode(meta::FileType::kFile, "", 0));
  meta::Inode* ino = part_->MutableInodeForTest(2);
  ASSERT_NE(ino, nullptr);
  ino->flag |= meta::kInodeDeleteMark;  // marked deleted behind the op path
  InvariantReport report;
  part_->CheckInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("missing from the free list"), std::string::npos)
      << report.ToString();
}

// --- Cluster-level checks ----------------------------------------------------

class ClusterInvariants : public ::testing::Test {
 protected:
  void Boot() {
    harness::ClusterOptions opts;
    opts.num_nodes = 5;
    cluster_ = std::make_unique<harness::Cluster>(opts);
    ASSERT_TRUE(harness::RunTask(cluster_->sched(), cluster_->Start())->ok());
    ASSERT_TRUE(
        harness::RunTask(cluster_->sched(), cluster_->CreateVolume("v", 3, 8))->ok());
    auto c = harness::RunTask(cluster_->sched(), cluster_->MountClient("v"));
    ASSERT_TRUE(c->ok());
    client_ = **c;
  }

  template <typename T>
  T Run(sim::Task<T> t) {
    auto out = harness::RunTask(cluster_->sched(), std::move(t));
    EXPECT_TRUE(out.has_value()) << "task hung";
    return std::move(*out);
  }

  std::unique_ptr<harness::Cluster> cluster_;
  client::Client* client_ = nullptr;
};

TEST_F(ClusterInvariants, HealthyClusterWithTrafficPasses) {
  Boot();
  for (int i = 0; i < 10; i++) {
    auto f = Run(client_->Create(kRootInode, "f" + std::to_string(i),
                                 meta::FileType::kFile));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(Run(client_->Open(f->id)).ok());
    ASSERT_TRUE(Run(client_->Write(f->id, 0, std::string(32 * kKiB, 'd'))).ok());
    ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  }
  cluster_->sched().RunFor(2 * kSec);
  InvariantReport report = cluster_->CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(ClusterInvariants, DanglingDentryFires) {
  Boot();
  // Seed the violation on a meta raft-leader replica's state machine: a
  // dentry whose inode id lies inside an owned range but was never created.
  meta::MetaPartition* leader = nullptr;
  for (int i = 0; i < cluster_->num_nodes() && !leader; i++) {
    for (meta::PartitionId pid : cluster_->meta_node(i)->PartitionIds()) {
      raft::RaftNode* rn = cluster_->meta_node(i)->GetRaft(pid);
      if (rn && rn->IsLeader()) {
        leader = cluster_->meta_node(i)->GetPartition(pid);
        break;
      }
    }
  }
  ASSERT_NE(leader, nullptr);
  meta::InodeId ghost = leader->config().start + 999;
  meta::Dentry d{kRootInode, "ghost", ghost, meta::FileType::kFile};
  leader->Apply(1u << 20, meta::MetaPartition::EncodeCreateDentry(d));
  InvariantReport report = cluster_->CheckInvariants();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("dangles"), std::string::npos) << report.ToString();
}

TEST_F(ClusterInvariants, CommittedOffsetBeyondReplicasFires) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "big.bin", meta::FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, std::string(256 * kKiB, 'w'))).ok());
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  cluster_->sched().RunFor(1 * kSec);
  ASSERT_TRUE(cluster_->CheckInvariants().ok());

  // Chain-leader bookkeeping claims more bytes committed than any replica
  // (including itself) durably holds: the §2.2.5 contract is broken.
  data::DataPartition* chain_leader = nullptr;
  storage::ExtentId extent = 0;
  for (int i = 0; i < cluster_->num_nodes() && !chain_leader; i++) {
    for (data::PartitionId pid : cluster_->data_node(i)->PartitionIds()) {
      data::DataPartition* p = cluster_->data_node(i)->GetPartition(pid);
      if (p->IsChainLeader() && p->store().num_extents() > 0) {
        chain_leader = p;
        p->store().ForEach([&](const storage::Extent& e) { extent = e.id; });
        break;
      }
    }
  }
  ASSERT_NE(chain_leader, nullptr);
  chain_leader->set_committed(extent,
                              chain_leader->store().ExtentSize(extent) + 64 * kKiB);
  InvariantReport report = cluster_->CheckInvariants();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("committed"), std::string::npos)
      << report.ToString();
}

// --- Determinism auditor: the negative case ----------------------------------

TEST(DeterminismAuditor, DivergentRunsProduceDifferentHashes) {
  // A scenario whose event sequence depends on anything but the seed must
  // change the trace hash — that is the auditor's entire detection power.
  auto run = [](int events) {
    sim::Scheduler s(42);
    for (int i = 0; i < events; i++) s.At(i * 10, [] {});
    s.Run();
    return s.trace_hash();
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(DeterminismAuditor, MessageTrafficFeedsTheHash) {
  // Two identical runs agree; injecting one extra message diverges them.
  auto run = [](bool extra) {
    sim::Scheduler sched(7);
    sim::Network net(&sched);
    sim::Host* a = net.AddHost();
    sim::Host* b = net.AddHost();
    struct Ping {
      uint64_t n = 0;
    };
    struct Pong {};
    b->Register<Ping, Pong>([](Ping, sim::NodeId) -> sim::Task<Pong> { co_return Pong{}; });
    sim::Spawn([](sim::Network* net, sim::Host* a, sim::Host* b,
                  bool extra) -> sim::Task<void> {
      (void)co_await net->Call<Ping, Pong>(a->id(), b->id(), Ping{1}, 1 * kSec);
      if (extra) {
        (void)co_await net->Call<Ping, Pong>(a->id(), b->id(), Ping{2}, 1 * kSec);
      }
    }(&net, a, b, extra));
    sched.Run();
    return sched.trace_hash();
  };
  EXPECT_EQ(run(false), run(false));
  EXPECT_NE(run(false), run(true));
}

}  // namespace
}  // namespace cfs
