// Determinism-auditor contract tests: the DES promises bit-identical replay
// from a seed, and the scheduler/network fold every executed event and every
// message into an FNV-1a trace hash (sim/scheduler.h). These tests run full
// cluster scenarios TWICE through harness::AuditDeterminism and fail on any
// hash divergence — the dynamic net that catches iteration-order and
// wall-clock bugs (e.g. unordered-container iteration feeding message order)
// the moment a change introduces one.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;
using sim::Task;

ClusterOptions SmallCluster(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = seed;
  opts.client.rpc_timeout = 300 * kMsec;
  return opts;
}

/// Boot + mount, returning the client (nullptr on failure, which the
/// scenario surfaces as a hash of the failed run — still deterministic).
Client* BootAndMount(Cluster& cluster) {
  auto st = RunTask(cluster.sched(), cluster.Start());
  if (!st || !st->ok()) return nullptr;
  st = RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8));
  if (!st || !st->ok()) return nullptr;
  auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
  if (!c || !c->ok()) return nullptr;
  return **c;
}

TEST(Determinism, MetadataAndDataWorkloadReplaysIdentically) {
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    for (int i = 0; i < 8; i++) {
      auto f = RunTask(cluster.sched(),
                       client->Create(kRootInode, "f" + std::to_string(i),
                                      FileType::kFile));
      ASSERT_TRUE(f && f->ok());
      ASSERT_TRUE(RunTask(cluster.sched(), client->Open((*f)->id))->ok());
      ASSERT_TRUE(RunTask(cluster.sched(),
                          client->Write((*f)->id, 0, std::string(64 * kKiB, 'd')))
                      ->ok());
      ASSERT_TRUE(RunTask(cluster.sched(), client->Close((*f)->id))->ok());
    }
    (void)RunTask(cluster.sched(), client->ReadDir(kRootInode));
    cluster.sched().RunFor(2 * kSec);
  };
  auto [first, second] = AuditDeterminism(SmallCluster(11), scenario);
  EXPECT_EQ(first, second);
}

TEST(Determinism, CrashAndRestartReplaysIdentically) {
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    auto f = RunTask(cluster.sched(),
                     client->Create(kRootInode, "crashy.bin", FileType::kFile));
    ASSERT_TRUE(f && f->ok());
    ASSERT_TRUE(RunTask(cluster.sched(), client->Open((*f)->id))->ok());
    ASSERT_TRUE(RunTask(cluster.sched(),
                        client->Write((*f)->id, 0, std::string(128 * kKiB, 'a')))
                    ->ok());
    cluster.CrashNode(2);
    cluster.sched().RunFor(2 * kSec);
    (void)RunTask(cluster.sched(),
                  client->Write((*f)->id, 128 * kKiB, std::string(64 * kKiB, 'b')));
    ASSERT_TRUE(RunTaskVoid(cluster.sched(), cluster.RestartNode(2)));
    cluster.sched().RunFor(3 * kSec);
    (void)RunTask(cluster.sched(), client->Read((*f)->id, 0, 192 * kKiB));
  };
  auto [first, second] = AuditDeterminism(SmallCluster(23), scenario);
  EXPECT_EQ(first, second);
}

TEST(Determinism, MessageLossReplaysIdentically) {
  // Drops draw from the seeded RNG, so even lossy runs must replay exactly.
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    cluster.net().SetDropProbability(0.05);
    for (int i = 0; i < 10; i++) {
      (void)RunTask(cluster.sched(),
                    client->Create(kRootInode, "lossy" + std::to_string(i),
                                   FileType::kFile));
    }
    cluster.net().SetDropProbability(0);
    cluster.sched().RunFor(2 * kSec);
  };
  auto [first, second] = AuditDeterminism(SmallCluster(37), scenario);
  EXPECT_EQ(first, second);
}

/// A mixed metadata + data workload used by the tracing audits below.
void TracedScenario(Cluster& cluster) {
  Client* client = BootAndMount(cluster);
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 4; i++) {
    auto f = RunTask(cluster.sched(),
                     client->Create(kRootInode, "t" + std::to_string(i), FileType::kFile));
    ASSERT_TRUE(f && f->ok());
    ASSERT_TRUE(RunTask(cluster.sched(),
                        client->Write((*f)->id, 0, std::string(192 * kKiB, 'x')))
                    ->ok());
    (void)RunTask(cluster.sched(), client->Read((*f)->id, 0, 64 * kKiB));
  }
  (void)RunTask(cluster.sched(), client->ReadDirPlus(kRootInode));
  cluster.sched().RunFor(1 * kSec);
}

TEST(Determinism, TracingIsScheduleNeutral) {
  // The zero-schedule-cost invariant (obs/trace.h): enabling the span
  // tracer must not perturb a single event or message — a traced and an
  // untraced run of the same seed produce identical MixTrace hashes.
  auto run = [](bool trace) {
    ClusterOptions opts = SmallCluster(41);
    opts.trace = trace;
    Cluster cluster(opts);
    TracedScenario(cluster);
    return cluster.sched().trace_hash();
  };
  uint64_t untraced = run(false);
  uint64_t traced = run(true);
  EXPECT_EQ(untraced, traced);
}

TEST(Determinism, TracedRunsProduceByteIdenticalObservability) {
  // Same-seed traced runs must agree byte for byte on every observability
  // artifact: the span log (ids come from the tracer's private seeded Rng)
  // and the unified metric registry dump (ordered maps only).
  auto run = [](std::string* span_log, std::string* metrics_json) {
    ClusterOptions opts = SmallCluster(43);
    opts.trace = true;
    Cluster cluster(opts);
    TracedScenario(cluster);
    *span_log = cluster.tracer().DumpLog();
    *metrics_json = cluster.MetricsJson();
    return cluster.tracer().num_spans();
  };
  std::string log1, log2, metrics1, metrics2;
  size_t spans1 = run(&log1, &metrics1);
  size_t spans2 = run(&log2, &metrics2);
  EXPECT_GT(spans1, 0u) << "traced workload recorded no spans";
  EXPECT_EQ(spans1, spans2);
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(metrics1, metrics2);
  // The registry absorbed the span count and at least one rpc metric.
  EXPECT_NE(metrics1.find("\"obs.spans\""), std::string::npos);
  EXPECT_NE(metrics1.find("\"rpc."), std::string::npos);
}

TEST(Determinism, HealthTelemetryIsScheduleNeutral) {
  // Health telemetry's zero-schedule-cost invariant (harness/cluster.h):
  // observers are synchronous, sampling rides the heartbeat wakeups that
  // exist anyway, and the heartbeat's wire size is frozen — so a run with
  // health scoring on is event-for-event identical to one with it off.
  auto run = [](bool health) {
    ClusterOptions opts = SmallCluster(47);
    opts.health = health;
    Cluster cluster(opts);
    TracedScenario(cluster);
    return cluster.sched().trace_hash();
  };
  uint64_t off = run(false);
  uint64_t on = run(true);
  EXPECT_EQ(off, on);
}

TEST(Determinism, HealthRunsProduceByteIdenticalDumps) {
  // Same-seed health-enabled runs must agree byte for byte on the full
  // health dump and the event log (integer arithmetic + ordered containers
  // only — no floats, no unordered iteration, no wall clock).
  auto run = [](std::string* health_json, std::string* events) {
    ClusterOptions opts = SmallCluster(53);
    opts.health = true;
    Cluster cluster(opts);
    TracedScenario(cluster);
    cluster.CollectAllNow();
    *health_json = cluster.HealthJson();
    *events = cluster.HealthEventsJsonl();
  };
  std::string json1, json2, events1, events2;
  run(&json1, &events1);
  run(&json2, &events2);
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(events1, events2);
  // The dump carries real telemetry: per-node series and the scorer section.
  EXPECT_NE(json1.find("\"scorer\""), std::string::npos);
  EXPECT_NE(json1.find("disk.write_usec"), std::string::npos);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check on the auditor's sensitivity: the same scenario under a
  // different seed takes a different event path (timers, jitter, drops).
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    (void)RunTask(cluster.sched(),
                  client->Create(kRootInode, "seeded", FileType::kFile));
    cluster.sched().RunFor(1 * kSec);
  };
  auto [a, a2] = AuditDeterminism(SmallCluster(5), scenario);
  auto [b, b2] = AuditDeterminism(SmallCluster(6), scenario);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(b, b2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cfs::harness
