// Determinism-auditor contract tests: the DES promises bit-identical replay
// from a seed, and the scheduler/network fold every executed event and every
// message into an FNV-1a trace hash (sim/scheduler.h). These tests run full
// cluster scenarios TWICE through harness::AuditDeterminism and fail on any
// hash divergence — the dynamic net that catches iteration-order and
// wall-clock bugs (e.g. unordered-container iteration feeding message order)
// the moment a change introduces one.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;
using sim::Task;

ClusterOptions SmallCluster(uint64_t seed) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = seed;
  opts.client.rpc_timeout = 300 * kMsec;
  return opts;
}

/// Boot + mount, returning the client (nullptr on failure, which the
/// scenario surfaces as a hash of the failed run — still deterministic).
Client* BootAndMount(Cluster& cluster) {
  auto st = RunTask(cluster.sched(), cluster.Start());
  if (!st || !st->ok()) return nullptr;
  st = RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8));
  if (!st || !st->ok()) return nullptr;
  auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
  if (!c || !c->ok()) return nullptr;
  return **c;
}

TEST(Determinism, MetadataAndDataWorkloadReplaysIdentically) {
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    for (int i = 0; i < 8; i++) {
      auto f = RunTask(cluster.sched(),
                       client->Create(kRootInode, "f" + std::to_string(i),
                                      FileType::kFile));
      ASSERT_TRUE(f && f->ok());
      ASSERT_TRUE(RunTask(cluster.sched(), client->Open((*f)->id))->ok());
      ASSERT_TRUE(RunTask(cluster.sched(),
                          client->Write((*f)->id, 0, std::string(64 * kKiB, 'd')))
                      ->ok());
      ASSERT_TRUE(RunTask(cluster.sched(), client->Close((*f)->id))->ok());
    }
    (void)RunTask(cluster.sched(), client->ReadDir(kRootInode));
    cluster.sched().RunFor(2 * kSec);
  };
  auto [first, second] = AuditDeterminism(SmallCluster(11), scenario);
  EXPECT_EQ(first, second);
}

TEST(Determinism, CrashAndRestartReplaysIdentically) {
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    auto f = RunTask(cluster.sched(),
                     client->Create(kRootInode, "crashy.bin", FileType::kFile));
    ASSERT_TRUE(f && f->ok());
    ASSERT_TRUE(RunTask(cluster.sched(), client->Open((*f)->id))->ok());
    ASSERT_TRUE(RunTask(cluster.sched(),
                        client->Write((*f)->id, 0, std::string(128 * kKiB, 'a')))
                    ->ok());
    cluster.CrashNode(2);
    cluster.sched().RunFor(2 * kSec);
    (void)RunTask(cluster.sched(),
                  client->Write((*f)->id, 128 * kKiB, std::string(64 * kKiB, 'b')));
    ASSERT_TRUE(RunTaskVoid(cluster.sched(), cluster.RestartNode(2)));
    cluster.sched().RunFor(3 * kSec);
    (void)RunTask(cluster.sched(), client->Read((*f)->id, 0, 192 * kKiB));
  };
  auto [first, second] = AuditDeterminism(SmallCluster(23), scenario);
  EXPECT_EQ(first, second);
}

TEST(Determinism, MessageLossReplaysIdentically) {
  // Drops draw from the seeded RNG, so even lossy runs must replay exactly.
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    cluster.net().SetDropProbability(0.05);
    for (int i = 0; i < 10; i++) {
      (void)RunTask(cluster.sched(),
                    client->Create(kRootInode, "lossy" + std::to_string(i),
                                   FileType::kFile));
    }
    cluster.net().SetDropProbability(0);
    cluster.sched().RunFor(2 * kSec);
  };
  auto [first, second] = AuditDeterminism(SmallCluster(37), scenario);
  EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check on the auditor's sensitivity: the same scenario under a
  // different seed takes a different event path (timers, jitter, drops).
  auto scenario = [](Cluster& cluster) {
    Client* client = BootAndMount(cluster);
    ASSERT_NE(client, nullptr);
    (void)RunTask(cluster.sched(),
                  client->Create(kRootInode, "seeded", FileType::kFile));
    cluster.sched().RunFor(1 * kSec);
  };
  auto [a, a2] = AuditDeterminism(SmallCluster(5), scenario);
  auto [b, b2] = AuditDeterminism(SmallCluster(6), scenario);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(b, b2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cfs::harness
