// Group-commit tests: proposal batching on the raft leader (one log write
// per batch), batch-size knobs (max_batch_proposals / max_batch_bytes /
// batch_linger), batch atomicity across a leader crash mid-batch, and a
// same-seed determinism audit of a 32-client batched metadata workload.
#include <gtest/gtest.h>

#include <set>

#include "harness/cluster.h"
#include "raft/invariants.h"
#include "raft/multiraft.h"
#include "raft/raft_node.h"
#include "sim/network.h"

namespace cfs::raft {
namespace {

using sim::NodeId;
using sim::Spawn;
using sim::Task;

/// Test state machine: an append-only list of applied commands.
class ListSm : public StateMachine {
 public:
  void Apply(Index index, std::string_view data) override {
    applied.emplace_back(index, std::string(data));
  }
  std::string TakeSnapshot() override {
    Encoder enc;
    enc.PutU64(applied.size());
    for (auto& [i, d] : applied) {
      enc.PutU64(i);
      enc.PutString(d);
    }
    return enc.Take();
  }
  void Restore(std::string_view snap) override {
    applied.clear();
    Decoder dec(snap);
    uint64_t n = 0;
    (void)dec.GetU64(&n);
    for (uint64_t k = 0; k < n; k++) {
      uint64_t i;
      std::string d;
      (void)dec.GetU64(&i);
      (void)dec.GetString(&d);
      applied.emplace_back(i, std::move(d));
    }
  }
  std::vector<std::pair<Index, std::string>> applied;
};

class GroupCommit : public ::testing::Test {
 protected:
  static constexpr int kN = 3;

  void SetUp() override { Build(kN, {}); }

  void Build(int n, RaftOptions opts) {
    sched_ = std::make_unique<sim::Scheduler>(seed_);
    net_ = std::make_unique<sim::Network>(sched_.get());
    hosts_.clear();
    rafts_.clear();
    sms_.clear();
    nodes_.clear();
    std::vector<NodeId> peers;
    for (int i = 0; i < n; i++) {
      hosts_.push_back(net_->AddHost());
      peers.push_back(hosts_.back()->id());
    }
    for (int i = 0; i < n; i++) {
      rafts_.push_back(std::make_unique<RaftHost>(net_.get(), hosts_[i], opts));
      sms_.push_back(std::make_unique<ListSm>());
      RaftNode* node =
          rafts_[i]->CreateGroup(1, peers, sms_[i].get(), hosts_[i]->disk(0));
      node->Start();
      nodes_.push_back(node);
    }
  }

  int AwaitLeader() {
    for (int round = 0; round < 600; round++) {
      sched_->RunFor(10 * kMsec);
      for (size_t i = 0; i < nodes_.size(); i++) {
        if (nodes_[i]->IsLeader()) return static_cast<int>(i);
      }
    }
    ADD_FAILURE() << "no leader elected";
    return -1;
  }

  /// Launch `k` proposals into the same scheduler instant (no event runs
  /// between the spawns) so they contend for the leader's batch queue, then
  /// run until every one resolves.
  std::vector<Status> ProposeConcurrent(int idx, int k, const std::string& prefix,
                                        size_t payload = 0) {
    std::vector<Status> results(k, Status::Retry("pending"));
    for (int j = 0; j < k; j++) {
      std::string cmd = prefix + std::to_string(j);
      if (payload > cmd.size()) cmd.resize(payload, 'x');
      Spawn([](RaftNode* n, std::string cmd, Status& out) -> Task<void> {
        out = co_await n->Propose(std::move(cmd));
      }(nodes_[idx], std::move(cmd), results[j]));
    }
    for (int round = 0; round < 1200; round++) {
      bool all = true;
      for (auto& s : results) all = all && !s.IsRetry();
      if (all) break;
      sched_->RunFor(10 * kMsec);
    }
    return results;
  }

  uint64_t seed_ = 42;
  std::unique_ptr<sim::Scheduler> sched_;
  std::unique_ptr<sim::Network> net_;
  std::vector<sim::Host*> hosts_;
  std::vector<std::unique_ptr<RaftHost>> rafts_;
  std::vector<std::unique_ptr<ListSm>> sms_;
  std::vector<RaftNode*> nodes_;
};

TEST_F(GroupCommit, ConcurrentProposalsShareLogWrites) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(500 * kMsec);  // settle so no election interferes

  uint64_t writes_before = nodes_[leader]->log().append_writes();
  auto results = ProposeConcurrent(leader, 16, "cmd-");
  for (const auto& s : results) EXPECT_TRUE(s.ok()) << s.ToString();

  // 16 concurrent proposals must coalesce: the first forms a batch of one
  // (it reaches the disk with an empty queue), the rest pile up behind its
  // log write and share flushes.
  const GroupCommitStats& gc = nodes_[leader]->group_commit_stats();
  EXPECT_EQ(gc.proposals, 16u);
  EXPECT_LT(gc.batches, 16u);
  EXPECT_GE(gc.max_batch, 2u);
  uint64_t write_delta = nodes_[leader]->log().append_writes() - writes_before;
  EXPECT_EQ(write_delta, gc.batches);
  EXPECT_LT(write_delta, 16u);

  // Every replica applied all 16 commands, in identical order.
  sched_->RunFor(2 * kSec);
  std::vector<std::string> reference;
  for (auto& [idx, data] : sms_[leader]->applied) reference.push_back(data);
  ASSERT_EQ(reference.size(), 16u);
  for (auto& sm : sms_) {
    ASSERT_EQ(sm->applied.size(), 16u);
    for (size_t i = 0; i < reference.size(); i++) {
      EXPECT_EQ(sm->applied[i].second, reference[i]);
    }
  }
}

TEST_F(GroupCommit, MaxBatchProposalsCapsBatchSize) {
  RaftOptions opts;
  opts.max_batch_proposals = 4;
  Build(kN, opts);
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(500 * kMsec);

  auto results = ProposeConcurrent(leader, 20, "cap-");
  for (const auto& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
  const GroupCommitStats& gc = nodes_[leader]->group_commit_stats();
  EXPECT_EQ(gc.proposals, 20u);
  EXPECT_LE(gc.max_batch, 4u);
  EXPECT_GE(gc.batches, 5u);  // 20 proposals cannot fit in fewer than 5 batches
}

TEST_F(GroupCommit, BatchSizeOneMatchesUnbatchedWriteCount) {
  RaftOptions opts;
  opts.max_batch_proposals = 1;  // ablation off: one log write per proposal
  Build(kN, opts);
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(500 * kMsec);

  uint64_t writes_before = nodes_[leader]->log().append_writes();
  auto results = ProposeConcurrent(leader, 10, "solo-");
  for (const auto& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
  const GroupCommitStats& gc = nodes_[leader]->group_commit_stats();
  EXPECT_EQ(gc.proposals, 10u);
  EXPECT_EQ(gc.batches, 10u);
  EXPECT_EQ(gc.max_batch, 1u);
  EXPECT_EQ(nodes_[leader]->log().append_writes() - writes_before, 10u);
}

TEST_F(GroupCommit, MaxBatchBytesSplitsAndOversizedCommandStillShips) {
  RaftOptions opts;
  opts.max_batch_bytes = 256;
  Build(kN, opts);
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(500 * kMsec);

  // 12 proposals of 100 bytes: at most two fit under the 256-byte cap.
  auto results = ProposeConcurrent(leader, 12, "byte-", 100);
  for (const auto& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
  const GroupCommitStats& gc = nodes_[leader]->group_commit_stats();
  EXPECT_EQ(gc.proposals, 12u);
  EXPECT_LE(gc.max_batch, 2u);

  // A single command larger than the cap ships anyway, as a batch of one.
  auto big = ProposeConcurrent(leader, 1, "big-", 1000);
  EXPECT_TRUE(big[0].ok()) << big[0].ToString();
  EXPECT_EQ(nodes_[leader]->group_commit_stats().proposals, 13u);
  sched_->RunFor(1 * kSec);
  EXPECT_EQ(sms_[leader]->applied.size(), 13u);
}

TEST_F(GroupCommit, LingerCoalescesIntoFewerBatches) {
  RaftOptions opts;
  opts.batch_linger = 1 * kMsec;  // >> the 200us log write
  Build(kN, opts);
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(500 * kMsec);

  auto results = ProposeConcurrent(leader, 16, "linger-");
  for (const auto& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
  // The linger holds the first drain until all 16 spawned proposals are
  // queued, so the whole burst shares one log write.
  const GroupCommitStats& gc = nodes_[leader]->group_commit_stats();
  EXPECT_EQ(gc.proposals, 16u);
  EXPECT_EQ(gc.batches, 1u);
  EXPECT_EQ(gc.max_batch, 16u);
}

TEST_F(GroupCommit, LeaderCrashMidBatchKeepsGroupConsistent) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(500 * kMsec);

  // Launch a burst and crash the leader while the first batch's log write
  // (200us) is still in flight and the rest of the burst sits queued.
  std::vector<Status> results(16, Status::Retry("pending"));
  for (int j = 0; j < 16; j++) {
    Spawn([](RaftNode* n, std::string cmd, Status& out) -> Task<void> {
      out = co_await n->Propose(std::move(cmd));
    }(nodes_[leader], "crash-" + std::to_string(j), results[j]));
  }
  sched_->RunFor(100);  // 100us: mid log write
  hosts_[leader]->Crash();

  // A new leader emerges among the survivors and the group keeps working.
  int new_leader = -1;
  for (int round = 0; round < 600 && new_leader < 0; round++) {
    sched_->RunFor(10 * kMsec);
    for (size_t i = 0; i < nodes_.size(); i++) {
      if (static_cast<int>(i) != leader && nodes_[i]->IsLeader()) {
        new_leader = static_cast<int>(i);
      }
    }
  }
  ASSERT_GE(new_leader, 0);
  Status marker = Status::Retry("pending");
  Spawn([](RaftNode* n, Status& out) -> Task<void> {
    out = co_await n->Propose("marker");
  }(nodes_[new_leader], marker));
  for (int round = 0; round < 600 && marker.IsRetry(); round++) {
    sched_->RunFor(10 * kMsec);
  }
  EXPECT_TRUE(marker.ok()) << marker.ToString();
  sched_->RunFor(3 * kSec);  // let abandoned proposals time out and settle

  // Batch atomicity: whatever prefix of the burst survived, the group's
  // protocol invariants hold across the live replicas and nothing applied
  // twice or out of order.
  InvariantReport report;
  std::vector<ReplicaSnapshot> group;
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (hosts_[i]->up()) group.push_back(SnapshotReplica(*nodes_[i]));
  }
  CheckRaftGroup(group, &report, "group-commit-crash");
  EXPECT_TRUE(report.ok()) << report.ToString();
  for (size_t i = 0; i < sms_.size(); i++) {
    if (!hosts_[i]->up()) continue;
    std::set<std::string> seen;
    Index prev = 0;
    for (auto& [idx, data] : sms_[i]->applied) {
      EXPECT_TRUE(seen.insert(data).second) << "duplicate apply of " << data;
      EXPECT_GT(idx, prev) << "apply order regressed";
      prev = idx;
    }
    EXPECT_TRUE(seen.count("marker"));
  }
}

}  // namespace
}  // namespace cfs::raft

// --- 32-client batched workload determinism audit ---------------------------

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;
using sim::Spawn;
using sim::Task;

TEST(GroupCommitDeterminism, BatchedClientBurstReplaysIdentically) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = 91;
  opts.client.rpc_timeout = 300 * kMsec;
  auto scenario = [](Cluster& cluster) {
    auto st = RunTask(cluster.sched(), cluster.Start());
    ASSERT_TRUE(st && st->ok());
    st = RunTask(cluster.sched(), cluster.CreateVolume("v", 2, 4));
    ASSERT_TRUE(st && st->ok());
    std::vector<Client*> clients;
    for (int i = 0; i < 32; i++) {
      auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
      ASSERT_TRUE(c && c->ok());
      clients.push_back(**c);
    }
    // All 32 clients create concurrently: their proposals pile into the
    // meta partitions' leader batch queues.
    int done = 0;
    for (int i = 0; i < 32; i++) {
      Spawn([](Client* c, int i, int& done) -> Task<void> {
        (void)co_await c->Create(kRootInode, "burst" + std::to_string(i),
                                 FileType::kFile);
        (void)co_await c->Create(kRootInode, "burst2-" + std::to_string(i),
                                 FileType::kFile);
        done++;
      }(clients[i], i, done));
    }
    ASSERT_TRUE(cluster.RunUntil([&] { return done == 32; }));
    cluster.sched().RunFor(2 * kSec);
  };
  auto [first, second] = AuditDeterminism(opts, scenario);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace cfs::harness
