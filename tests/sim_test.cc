// Unit tests for the discrete-event simulation substrate: scheduler,
// coroutines, futures, resources, disks, network RPC, partitions, crashes.
#include <gtest/gtest.h>

#include "sim/disk.h"
#include "sim/network.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cfs::sim {
namespace {

TEST(SchedulerTest, EventsRunInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST(SchedulerTest, SameTimestampFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) s.At(5, [&, i] { order.push_back(i); });
  s.Run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, RunUntilLeavesFutureEvents) {
  Scheduler s;
  int fired = 0;
  s.At(10, [&] { fired++; });
  s.At(100, [&] { fired++; });
  s.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 50);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, RunUntilRunsEventExactlyAtBoundary) {
  // The contract is "run all events with time <= t": an event scheduled
  // exactly at t fires, and the clock lands on t, not past it.
  Scheduler s;
  int fired = 0;
  s.At(50, [&] { fired++; });
  s.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 50);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, RunUntilEmptyQueueAdvancesClock) {
  // With nothing queued, RunUntil still moves Now() to t (virtual time is
  // free); a later, smaller t must not move the clock backwards.
  Scheduler s;
  s.RunUntil(75);
  EXPECT_EQ(s.Now(), 75);
  s.RunUntil(10);
  EXPECT_EQ(s.Now(), 75);
}

TEST(SchedulerTest, SameSeedRunsProduceEqualTraceHashes) {
  // The determinism contract in one test: identical seeds must yield
  // identical event traces, and the trace hash is sensitive to any extra
  // event. Full-cluster versions of this live in determinism_test.cc.
  auto run = [](uint64_t seed, int extra_events) {
    Scheduler s(seed);
    for (int i = 0; i < 5 + extra_events; i++) {
      s.At(10 * (i + 1) + static_cast<SimTime>(s.rng().Uniform(5)), [] {});
    }
    s.Run();
    return s.trace_hash();
  };
  EXPECT_EQ(run(42, 0), run(42, 0));
  EXPECT_NE(run(42, 0), run(42, 1));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler s;
  s.At(100, [] {});
  s.RunUntil(100);
  bool ran = false;
  s.At(5, [&] { ran = true; });  // in the past; clamps
  s.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.Now(), 100);
}

Task<int> Add(Scheduler& s, int a, int b) {
  co_await SleepFor{s, 10};
  co_return a + b;
}

Task<int> Nested(Scheduler& s) {
  int x = co_await Add(s, 1, 2);
  int y = co_await Add(s, x, 10);
  co_return y;
}

TEST(TaskTest, NestedAwaitAccumulatesTime) {
  Scheduler s;
  int result = 0;
  Spawn([](Scheduler& s, int& result) -> Task<void> {
    result = co_await Nested(s);
  }(s, result));
  s.Run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(s.Now(), 20);  // two sleeps of 10
}

TEST(TaskTest, ManyConcurrentTasks) {
  Scheduler s;
  int done = 0;
  for (int i = 0; i < 1000; i++) {
    Spawn([](Scheduler& s, int i, int& done) -> Task<void> {
      co_await SleepFor{s, i % 7};
      done++;
    }(s, i, done));
  }
  s.Run();
  EXPECT_EQ(done, 1000);
}

TEST(FutureTest, SetBeforeAwait) {
  Scheduler s;
  Promise<int> p(&s);
  p.Set(99);
  int got = 0;
  Spawn([](Promise<int> p, int& got) -> Task<void> {
    got = co_await p.future();
  }(p, got));
  s.Run();
  EXPECT_EQ(got, 99);
}

TEST(FutureTest, SetAfterAwait) {
  Scheduler s;
  Promise<int> p(&s);
  int got = 0;
  Spawn([](Promise<int> p, int& got) -> Task<void> {
    got = co_await p.future();
  }(p, got));
  s.At(50, [p] { p.Set(7); });
  s.Run();
  EXPECT_EQ(got, 7);
}

TEST(FutureTest, TimeoutReturnsNullopt) {
  Scheduler s;
  Promise<int> p(&s);
  bool timed_out = false;
  Spawn([](Scheduler& s, Promise<int> p, bool& timed_out) -> Task<void> {
    auto v = co_await p.future().WithTimeout(100);
    timed_out = !v.has_value();
    EXPECT_EQ(s.Now(), 100);
  }(s, p, timed_out));
  s.Run();
  EXPECT_TRUE(timed_out);
}

TEST(FutureTest, ValueBeatsTimeout) {
  Scheduler s;
  Promise<int> p(&s);
  int got = -1;
  Spawn([](Promise<int> p, int& got) -> Task<void> {
    auto v = co_await p.future().WithTimeout(100);
    got = v.value_or(-2);
  }(p, got));
  s.At(10, [p] { p.Set(5); });
  s.Run();
  EXPECT_EQ(got, 5);
}

TEST(FutureTest, LateSetAfterTimeoutIsIgnored) {
  Scheduler s;
  Promise<int> p(&s);
  int got = -1;
  Spawn([](Promise<int> p, int& got) -> Task<void> {
    auto v = co_await p.future().WithTimeout(100);
    got = v.value_or(-2);
  }(p, got));
  s.At(500, [p] { p.Set(5); });
  s.Run();
  EXPECT_EQ(got, -2);
}

TEST(JoinTest, WaitsForAllSubtasks) {
  Scheduler s;
  Join j(&s, 3);
  bool done = false;
  for (int i = 1; i <= 3; i++) {
    Spawn([](Scheduler& s, int i, std::function<void()> arrive) -> Task<void> {
      co_await SleepFor{s, i * 100};
      arrive();
    }(s, i, j.Arrive()));
  }
  Spawn([](Scheduler& s, Join& j, bool& done) -> Task<void> {
    co_await j.Wait();
    done = true;
    EXPECT_EQ(s.Now(), 300);
  }(s, j, done));
  s.Run();
  EXPECT_TRUE(done);
}

TEST(SemaphoreTest, AcquireReportsStall) {
  Scheduler s;
  Semaphore sem(&s, 2);
  std::vector<bool> stalled;
  for (int i = 0; i < 3; i++) {
    Spawn([](Scheduler& s, Semaphore& sem, std::vector<bool>& stalled) -> Task<void> {
      bool st = co_await sem.Acquire();
      stalled.push_back(st);
      co_await SleepFor{s, 10};
      sem.Release();
    }(s, sem, stalled));
  }
  s.Run();
  ASSERT_EQ(stalled.size(), 3u);
  EXPECT_FALSE(stalled[0]);  // two free permits
  EXPECT_FALSE(stalled[1]);
  EXPECT_TRUE(stalled[2]);  // window full: had to wait for a release
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, WaitersResumeFifo) {
  Scheduler s;
  Semaphore sem(&s, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; i++) {
    Spawn([](Scheduler& s, Semaphore& sem, int i, std::vector<int>& order) -> Task<void> {
      (void)co_await sem.Acquire();
      order.push_back(i);
      co_await SleepFor{s, 5};
      sem.Release();
    }(s, sem, i, order));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SemaphoreTest, NoBargingPastQueuedWaiters) {
  Scheduler s;
  Semaphore sem(&s, 1);
  EXPECT_TRUE(sem.TryAcquire());
  bool waiter_got_it = false;
  Spawn([](Semaphore& sem, bool& got) -> Task<void> {
    (void)co_await sem.Acquire();
    got = true;
  }(sem, waiter_got_it));
  s.Run();
  EXPECT_FALSE(waiter_got_it);  // still held
  // A release with a queued waiter hands the permit over: TryAcquire must
  // not steal it even though it runs before the waiter's scheduled resume.
  sem.Release();
  EXPECT_FALSE(sem.TryAcquire());
  s.Run();
  EXPECT_TRUE(waiter_got_it);
}

TEST(SemaphoreTest, ReleaseManyResumesMany) {
  Scheduler s;
  Semaphore sem(&s, 0);
  int resumed = 0;
  for (int i = 0; i < 3; i++) {
    Spawn([](Semaphore& sem, int& resumed) -> Task<void> {
      (void)co_await sem.Acquire();
      resumed++;
    }(sem, resumed));
  }
  s.Run();
  EXPECT_EQ(resumed, 0);
  EXPECT_EQ(sem.num_waiters(), 3u);
  sem.Release(2);
  s.Run();
  EXPECT_EQ(resumed, 2);
  sem.Release();
  s.Run();
  EXPECT_EQ(resumed, 3);
  EXPECT_EQ(sem.available(), 0);
}

TEST(ResourceTest, SingleServerQueues) {
  Scheduler s;
  Resource r(&s, 1);
  EXPECT_EQ(r.Reserve(100), 100);
  EXPECT_EQ(r.Reserve(100), 200);  // queued behind first
  EXPECT_EQ(r.Reserve(50), 250);
}

TEST(ResourceTest, MultiServerParallel) {
  Scheduler s;
  Resource r(&s, 4);
  for (int i = 0; i < 4; i++) EXPECT_EQ(r.Reserve(100), 100);
  EXPECT_EQ(r.Reserve(100), 200);  // 5th op waits
}

TEST(ResourceTest, IdleServerStartsNow) {
  Scheduler s;
  s.At(1000, [] {});
  s.Run();
  Resource r(&s, 1);
  EXPECT_EQ(r.Reserve(10), 1010);
}

TEST(DiskTest, WriteChargesTimeAndSpace) {
  Scheduler s;
  DiskOptions opts;
  opts.write_latency_usec = 100;
  opts.bandwidth_mib = 100;
  Disk d(&s, opts);
  bool done = false;
  Spawn([](Scheduler& s, Disk& d, bool& done) -> Task<void> {
    Status st = co_await d.Write(100 * kMiB);
    EXPECT_TRUE(st.ok());
    // 100 MiB at 100 MiB/s = 1 s, plus 100 us latency.
    EXPECT_EQ(s.Now(), kSec + 100);
    done = true;
  }(s, d, done));
  s.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(d.used_bytes(), 100 * kMiB);
}

TEST(DiskTest, FullDiskRejectsWrites) {
  Scheduler s;
  DiskOptions opts;
  opts.capacity_bytes = kMiB;
  Disk d(&s, opts);
  Status got;
  Spawn([](Disk& d, Status& got) -> Task<void> {
    (void)co_await d.Write(kMiB);
    got = co_await d.Write(1);
  }(d, got));
  s.Run();
  EXPECT_TRUE(got.IsNoSpace());
}

TEST(DiskTest, PunchHoleFreesSpace) {
  Scheduler s;
  Disk d(&s);
  Spawn([](Disk& d) -> Task<void> { (void)co_await d.Write(10 * kMiB); }(d));
  s.Run();
  d.PunchHole(4 * kMiB);
  EXPECT_EQ(d.used_bytes(), 6 * kMiB);
  EXPECT_EQ(d.punched_bytes(), 4 * kMiB);
}

TEST(DiskTest, FailedDiskReturnsIOError) {
  Scheduler s;
  Disk d(&s);
  d.set_failed(true);
  Status got;
  Spawn([](Disk& d, Status& got) -> Task<void> { got = co_await d.Read(100); }(d, got));
  s.Run();
  EXPECT_EQ(got.code(), StatusCode::kIOError);
}

// --- Network / RPC ---

struct EchoReq {
  int x;
  size_t WireBytes() const { return 128; }
};
struct EchoResp {
  int x;
};

struct BigReq {
  size_t bytes;
  size_t WireBytes() const { return bytes; }
};
struct BigResp {};

class NetFixture : public ::testing::Test {
 protected:
  NetFixture() : net_(&sched_) {
    a_ = net_.AddHost();
    b_ = net_.AddHost();
    b_->Register<EchoReq, EchoResp>([](EchoReq req, NodeId) -> Task<EchoResp> {
      co_return EchoResp{req.x * 2};
    });
    b_->Register<BigReq, BigResp>([](BigReq, NodeId) -> Task<BigResp> {
      co_return BigResp{};
    });
  }
  Scheduler sched_;
  Network net_;
  Host* a_;
  Host* b_;
};

TEST_F(NetFixture, BasicRpcRoundTrip) {
  int got = 0;
  Spawn([](Network& net, int& got) -> Task<void> {
    auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{21});
    EXPECT_TRUE(r.ok()); if (!r.ok()) co_return;
    got = r->x;
  }(net_, got));
  sched_.Run();
  EXPECT_EQ(got, 42);
  EXPECT_GE(sched_.Now(), 2 * 120);  // at least two propagation latencies
  EXPECT_EQ(net_.messages_sent(), 2u);
}

TEST_F(NetFixture, LargeTransfersTakeBandwidthTime) {
  SimTime rpc_time = 0;
  Spawn([](Network& net, Scheduler& s, SimTime& t) -> Task<void> {
    auto r = co_await net.Call<BigReq, BigResp>(1, 2, BigReq{100 * kMiB}, 10 * kSec);
    EXPECT_TRUE(r.ok()); if (!r.ok()) co_return;
    t = s.Now();
  }(net_, sched_, rpc_time));
  sched_.Run();
  // 100 MiB at ~117 MiB/s is ~0.85 s.
  EXPECT_GT(rpc_time, 700 * kMsec);
  EXPECT_LT(rpc_time, 1200 * kMsec);
}

TEST_F(NetFixture, PartitionCausesTimeout) {
  net_.SetPartitioned(1, 2, true);
  Status got;
  Spawn([](Network& net, Status& got) -> Task<void> {
    auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{1}, 5000);
    got = r.status();
  }(net_, got));
  sched_.Run();
  EXPECT_TRUE(got.IsTimedOut());
}

TEST_F(NetFixture, HealedPartitionWorksAgain) {
  net_.SetPartitioned(1, 2, true);
  net_.SetPartitioned(1, 2, false);
  int got = 0;
  Spawn([](Network& net, int& got) -> Task<void> {
    auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{5});
    if (r.ok()) got = r->x;
  }(net_, got));
  sched_.Run();
  EXPECT_EQ(got, 10);
}

TEST_F(NetFixture, DeadHostTimesOut) {
  b_->Crash();
  Status got;
  Spawn([](Network& net, Status& got) -> Task<void> {
    auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{1}, 5000);
    got = r.status();
  }(net_, got));
  sched_.Run();
  EXPECT_TRUE(got.IsTimedOut());
}

TEST_F(NetFixture, RestartBumpsEpochAndServes) {
  uint64_t e0 = b_->epoch();
  b_->Crash();
  b_->Restart();
  EXPECT_EQ(b_->epoch(), e0 + 2);
  int got = 0;
  Spawn([](Network& net, int& got) -> Task<void> {
    auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{3});
    if (r.ok()) got = r->x;
  }(net_, got));
  sched_.Run();
  EXPECT_EQ(got, 6);
}

TEST_F(NetFixture, UnregisteredRequestTimesOut) {
  struct Unknown {};
  Status got;
  Spawn([](Network& net, Status& got) -> Task<void> {
    struct UnknownResp {};
    auto r = co_await net.Call<Unknown, UnknownResp>(1, 2, Unknown{}, 2000);
    got = r.status();
  }(net_, got));
  sched_.Run();
  EXPECT_TRUE(got.IsTimedOut());
}

TEST_F(NetFixture, DropProbabilityOneLosesEverything) {
  net_.SetDropProbability(1.0);
  Status got;
  Spawn([](Network& net, Status& got) -> Task<void> {
    auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{1}, 2000);
    got = r.status();
  }(net_, got));
  sched_.Run();
  EXPECT_TRUE(got.IsTimedOut());
}

TEST_F(NetFixture, ConcurrentRpcsAllComplete) {
  int completed = 0;
  for (int i = 0; i < 200; i++) {
    Spawn([](Network& net, int i, int& completed) -> Task<void> {
      auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{i});
      EXPECT_TRUE(r.ok()); if (!r.ok()) co_return;
      EXPECT_EQ(r->x, i * 2);
      completed++;
    }(net_, i, completed));
  }
  sched_.Run();
  EXPECT_EQ(completed, 200);
}

TEST(StableStorageTest, PutGetDeleteList) {
  StableStorage st;
  st.Put("raft/1/log", "abc");
  st.Append("raft/1/log", "def");
  std::string v;
  ASSERT_TRUE(st.Get("raft/1/log", &v));
  EXPECT_EQ(v, "abcdef");
  st.Put("raft/2/log", "x");
  st.Put("extent/7", "y");
  EXPECT_EQ(st.List("raft/").size(), 2u);
  st.Delete("raft/1/log");
  EXPECT_FALSE(st.Has("raft/1/log"));
  EXPECT_EQ(st.TotalBytes(), 2u);
}

TEST(HostTest, MemoryAccounting) {
  Scheduler s;
  Network net(&s);
  Host* h = net.AddHost();
  h->AddMemory(1024);
  EXPECT_EQ(h->memory_used(), 1024u);
  h->AddMemory(-1000);
  EXPECT_EQ(h->memory_used(), 24u);
  EXPECT_GT(h->MemoryUtilization(), 0.0);
}

TEST(HostTest, PickDiskChoosesLeastUsed) {
  Scheduler s;
  Network net(&s);
  HostOptions opts;
  opts.num_disks = 3;
  Host* h = net.AddHost(opts);
  Spawn([](Host* h) -> Task<void> {
    (void)co_await h->disk(0)->Write(10 * kMiB);
    (void)co_await h->disk(1)->Write(5 * kMiB);
  }(h));
  s.Run();
  EXPECT_EQ(h->PickDisk(), 2);
}

// Determinism: two identical simulations produce identical event histories.
TEST(DeterminismTest, SameSeedSameTimeline) {
  auto run = [](uint64_t seed) {
    Scheduler s(seed);
    Network net(&s);
    net.AddHost();
    Host* b = net.AddHost();
    b->Register<EchoReq, EchoResp>([&s](EchoReq req, NodeId) -> Task<EchoResp> {
      co_await SleepFor{s, 10};
      co_return EchoResp{req.x + 1};
    });
    SimTime total = 0;
    for (int i = 0; i < 50; i++) {
      Spawn([](Network& net, Scheduler& s, SimTime& total, int i) -> Task<void> {
        auto r = co_await net.Call<EchoReq, EchoResp>(1, 2, EchoReq{i});
        EXPECT_TRUE(r.ok()); if (!r.ok()) co_return;
        total += s.Now();
      }(net, s, total, i));
    }
    s.Run();
    return std::make_pair(total, s.Now());
  };
  auto [t1, n1] = run(123);
  auto [t2, n2] = run(123);
  auto [t3, n3] = run(456);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(n1, n2);
  // Different seed shifts jitter; timeline differs.
  EXPECT_NE(t1, t3);
}

}  // namespace
}  // namespace cfs::sim
