// Unit tests for the common runtime: Status, Result, codec, CRC32, RNG.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/status.h"

namespace cfs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("inode 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: inode 42");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::NotLeader().IsNotLeader());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::Retry().IsRetry());
  EXPECT_EQ(Status::IOError().code(), StatusCode::kIOError);
  EXPECT_EQ(Status::InvalidArgument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Unsupported().code(), StatusCode::kUnsupported);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

Status HelperReturnIfError(bool fail) {
  CFS_RETURN_IF_ERROR(fail ? Status::IOError("x") : Status::OK());
  return Status::NotFound("reached end");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(HelperReturnIfError(true).code() == StatusCode::kIOError);
  EXPECT_TRUE(HelperReturnIfError(false).IsNotFound());
}

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder e;
  e.PutU8(0xab);
  e.PutU16(0x1234);
  e.PutU32(0xdeadbeef);
  e.PutU64(0x0123456789abcdefull);
  e.PutI64(-42);

  Decoder d(e.data());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  ASSERT_TRUE(d.GetU8(&u8).ok());
  ASSERT_TRUE(d.GetU16(&u16).ok());
  ASSERT_TRUE(d.GetU32(&u32).ok());
  ASSERT_TRUE(d.GetU64(&u64).ok());
  ASSERT_TRUE(d.GetI64(&i64).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(d.Done());
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  Encoder e;
  std::vector<uint64_t> values = {0,      1,         127,        128,
                                  16383,  16384,     (1u << 21), (1ull << 35),
                                  1ull << 63, UINT64_MAX};
  for (uint64_t v : values) e.PutVarint(v);
  Decoder d(e.data());
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(d.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(d.Done());
}

TEST(CodecTest, StringRoundTrip) {
  Encoder e;
  e.PutString("");
  e.PutString("hello");
  std::string big(100000, 'z');
  e.PutString(big);

  Decoder d(e.data());
  std::string a, b, c;
  ASSERT_TRUE(d.GetString(&a).ok());
  ASSERT_TRUE(d.GetString(&b).ok());
  ASSERT_TRUE(d.GetString(&c).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c, big);
}

TEST(CodecTest, UnderflowIsCorruption) {
  Decoder d("ab");
  uint64_t v;
  EXPECT_TRUE(d.GetU64(&v).IsCorruption());
  Decoder d2("\xff\xff");
  EXPECT_TRUE(d2.GetVarint(&v).IsCorruption());
  Decoder d3("\x0aabc");  // declared length 10, only 3 bytes
  std::string s;
  EXPECT_TRUE(d3.GetString(&s).IsCorruption());
}

TEST(Crc32Test, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (Castagnoli reference value).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, DetectsCorruption) {
  std::string data(4096, 'a');
  uint32_t crc = Crc32c(data);
  data[100] = 'b';
  EXPECT_NE(Crc32c(data), crc);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  uint32_t part = Crc32c(data.substr(0, 10));
  part = Crc32c(data.substr(10), part);
  EXPECT_EQ(part, whole);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(7);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace cfs
