// Unit tests for the observability layer (src/obs/): histogram quantile
// interpolation edge cases, registry merge semantics and dump stability,
// tracer span bookkeeping, and the trace-analysis helpers benches rely on
// for their stage_breakdown lines.
#include <gtest/gtest.h>

#include "obs/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfs::obs {
namespace {

// --- Histogram quantiles -----------------------------------------------------

TEST(Histogram, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.P50(), 0.0);
  EXPECT_EQ(h.P95(), 0.0);
  EXPECT_EQ(h.P99(), 0.0);
  EXPECT_EQ(h.count, 0u);
}

TEST(Histogram, SingleSampleAllQuantilesInItsBucket) {
  Histogram h;
  h.Add(150);  // bucket (100, 200]
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.max_usec, 150u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    double v = h.Quantile(q);
    // q=0 returns the bucket's lower edge; everything stays within (the
    // sample's bucket bounds, clamped to the observed max].
    EXPECT_GE(v, 100.0) << "q=" << q;
    EXPECT_LE(v, 200.0) << "q=" << q;
  }
}

TEST(Histogram, SingleBucketInterpolatesWithinBounds) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Add(1500);  // all in (1000, 2000]
  double p50 = h.P50(), p95 = h.P95(), p99 = h.P99();
  EXPECT_GT(p50, 1000.0);
  EXPECT_LE(p99, 2000.0);
  // Interpolation is monotone in q.
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(Histogram, QuantilesOrderedAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; i++) h.Add(80);      // <= 100
  for (int i = 0; i < 9; i++) h.Add(15000);    // (10000, 20000]
  h.Add(450000);                               // (200000, 500000]
  EXPECT_LE(h.P50(), 100.0);
  EXPECT_GT(h.P95(), 10000.0);
  EXPECT_LE(h.P95(), 20000.0);
  // rank(0.99) = 99 of 100 lands exactly at the top of the middle bucket;
  // only a strictly higher rank crosses into the outlier's bucket.
  EXPECT_LE(h.P99(), 20000.0);
  EXPECT_GT(h.Quantile(0.995), 200000.0);
  EXPECT_LE(h.Quantile(0.995), 450000.0);
}

TEST(Histogram, OverflowBucketClampsToObservedMax) {
  Histogram h;
  const uint64_t huge = 9'000'000;  // past the last bound (5s)
  h.Add(huge);
  h.Add(huge + 500);
  // Every quantile lands in the overflow bucket, whose upper edge is the
  // observed max (no sample exceeded it), not infinity.
  EXPECT_GT(h.P50(), static_cast<double>(Histogram::kBounds[Histogram::kNumBounds - 1]));
  EXPECT_LE(h.P99(), static_cast<double>(huge + 500));
  EXPECT_EQ(h.max_usec, huge + 500);
}

TEST(Histogram, MergePreservesCountSumMax) {
  Histogram a, b;
  a.Add(100);
  a.Add(300);
  b.Add(7000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum_usec, 7400u);
  EXPECT_EQ(a.max_usec, 7000u);
}

// Pins the edge behavior documented on Histogram::Quantile and its integer
// sibling QuantileUpperBound (the health scorer's byte-stable p99).
TEST(Histogram, QuantileEdges) {
  // Empty: both forms return 0 for every q.
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.0), 0.0);
  EXPECT_EQ(empty.Quantile(1.0), 0.0);
  EXPECT_EQ(empty.QuantileUpperBound(99, 100), 0u);

  // q == 0 -> lower edge of the first non-empty bucket.
  Histogram h;
  h.Add(1500);  // bucket (1000, 2000]
  EXPECT_EQ(h.Quantile(0.0), 1000.0);

  // count == 1 -> never above the sample itself.
  EXPECT_LE(h.Quantile(1.0), 1500.0);
  // Integer form reports the bucket's upper edge, by design one bucket
  // coarser than the interpolated estimate.
  EXPECT_EQ(h.QuantileUpperBound(50, 100), 2000u);
  EXPECT_EQ(h.QuantileUpperBound(99, 100), 2000u);

  // Rank arithmetic: ceil(count * q) with the rank clamped to [1, count].
  Histogram r;
  for (int i = 0; i < 99; i++) r.Add(80);  // <= 100
  r.Add(15000);                            // (10000, 20000]
  // ceil(100 * 0.99) = 99 -> still the low bucket; 0.995 crosses over.
  EXPECT_EQ(r.QuantileUpperBound(99, 100), 100u);
  EXPECT_EQ(r.QuantileUpperBound(995, 1000), 20000u);
  EXPECT_EQ(r.QuantileUpperBound(0, 100), 100u);  // rank clamps up to 1

  // Overflow bucket -> observed max, not infinity and not the last bound.
  Histogram o;
  o.Add(9'000'000);
  EXPECT_EQ(o.QuantileUpperBound(99, 100), 9'000'000u);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, CountersSumGaugesHighWatermark) {
  Registry r;
  r.Add("x.ops", 3);
  r.Add("x.ops", 4);
  r.SetMax("x.depth", 5);
  r.SetMax("x.depth", 2);  // lower: ignored
  EXPECT_EQ(r.counter("x.ops"), 7u);
  EXPECT_EQ(r.gauge("x.depth"), 5);
}

TEST(Registry, MergeFromCombinesAllKinds) {
  Registry a, b;
  a.Add("c", 1);
  b.Add("c", 2);
  a.SetMax("g", 10);
  b.SetMax("g", 20);
  a.Observe("h", 100);
  b.Observe("h", 5000);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_EQ(a.gauge("g"), 20);
  const Histogram* h = a.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->max_usec, 5000u);
}

TEST(Registry, DumpJsonIsByteStableAndSorted) {
  auto build = []() {
    Registry r;
    r.Add("z.last", 1);
    r.Add("a.first", 2);
    r.Set("m.gauge", 7);
    r.Observe("lat", 123);
    return r.DumpJson();
  };
  std::string once = build(), twice = build();
  EXPECT_EQ(once, twice);
  // Ordered maps: "a.first" serializes before "z.last".
  EXPECT_LT(once.find("a.first"), once.find("z.last"));
  EXPECT_NE(once.find("\"counters\""), std::string::npos);
  EXPECT_NE(once.find("\"gauges\""), std::string::npos);
  EXPECT_NE(once.find("\"histograms\""), std::string::npos);
}

// --- Tracer ------------------------------------------------------------------

TEST(Tracer, DisabledMintsNothing) {
  SimTime now = 0;
  Tracer t(1, &now);
  SpanRef root = t.BeginTrace("op:test", 0);
  EXPECT_FALSE(root.valid());
  EXPECT_FALSE(root.ctx.valid());
  t.Note(root, "k", 1);  // all no-ops
  t.End(root);
  EXPECT_EQ(t.num_spans(), 0u);
  EXPECT_EQ(t.DumpLog(), "");
}

TEST(Tracer, UntracedParentPropagatesAsNoop) {
  SimTime now = 0;
  Tracer t(1, &now);
  t.set_enabled(true);
  TraceContext untraced;  // zero trace id
  SpanRef child = t.BeginSpan("rpc:Leg", untraced, 3);
  EXPECT_FALSE(child.valid());
  EXPECT_EQ(t.num_spans(), 0u);
}

TEST(Tracer, SpanTreeCarriesTimesNodesAndNotes) {
  SimTime now = 100;
  Tracer t(42, &now);
  t.set_enabled(true);
  SpanRef root = t.BeginTrace("op:write", 0);
  ASSERT_TRUE(root.valid());
  now = 150;
  SpanRef child = t.BeginSpan("rpc:WritePacket", root.ctx, 7);
  ASSERT_TRUE(child.valid());
  t.Note(child, "bytes", 4096);
  now = 180;
  t.End(child);
  now = 200;
  t.End(root);

  ASSERT_EQ(t.num_spans(), 2u);
  const Span& r = t.spans()[0];
  const Span& c = t.spans()[1];
  EXPECT_EQ(r.parent_id, 0u);
  EXPECT_EQ(c.trace_id, r.trace_id);
  EXPECT_EQ(c.parent_id, r.span_id);
  EXPECT_EQ(c.node, 7u);
  EXPECT_EQ(r.start, 100);
  EXPECT_EQ(r.end, 200);
  EXPECT_EQ(c.start, 150);
  EXPECT_EQ(c.end, 180);
  ASSERT_EQ(c.notes.size(), 1u);
  EXPECT_EQ(c.notes[0].first, "bytes");
  EXPECT_EQ(c.notes[0].second, 4096);
}

TEST(Tracer, SameSeedSameIds) {
  SimTime now = 0;
  Tracer a(9, &now), b(9, &now);
  a.set_enabled(true);
  b.set_enabled(true);
  SpanRef ra = a.BeginTrace("op:x", 0);
  SpanRef rb = b.BeginTrace("op:x", 0);
  EXPECT_EQ(ra.ctx.trace_id, rb.ctx.trace_id);
  EXPECT_EQ(a.DumpLog(), b.DumpLog());
}

TEST(SpanScope, ClosesOnDestructionAndMove) {
  SimTime now = 10;
  Tracer t(5, &now);
  t.set_enabled(true);
  {
    SpanScope scope(&t, t.BeginTrace("op:scoped", 0));
    scope.Note("n", 1);
    now = 30;
  }
  ASSERT_EQ(t.num_spans(), 1u);
  EXPECT_EQ(t.spans()[0].end, 30);

  SpanScope a(&t, t.BeginTrace("op:moved", 0));
  SpanScope b = std::move(a);
  now = 50;
  b = SpanScope();  // move-assign closes the span
  EXPECT_EQ(t.spans()[1].end, 50);
}

// --- Analysis ----------------------------------------------------------------

TEST(Analysis, StageBreakdownGroupsByNameAndComputesCoverage) {
  SimTime now = 0;
  Tracer t(3, &now);
  t.set_enabled(true);
  SpanRef root = t.BeginTrace("op:write", 0);
  now = 10;
  SpanRef s1 = t.BeginSpan("disk:write", root.ctx, 1);
  now = 40;
  t.End(s1);
  SpanRef s2 = t.BeginSpan("disk:write", root.ctx, 2);
  now = 60;
  t.End(s2);
  now = 100;
  t.End(root);

  TraceBreakdown bd = StageBreakdown(t, root.ctx.trace_id);
  EXPECT_EQ(bd.trace_id, root.ctx.trace_id);
  EXPECT_EQ(bd.root_name, "op:write");
  EXPECT_EQ(bd.total_usec, 100);
  ASSERT_EQ(bd.stages.count("disk:write"), 1u);
  EXPECT_EQ(bd.stages.at("disk:write").count, 2u);
  EXPECT_EQ(bd.stages.at("disk:write").sum_usec, 50);
  EXPECT_EQ(bd.stages.at("disk:write").max_usec, 30);
  EXPECT_DOUBLE_EQ(bd.Coverage(), 0.5);
  std::string json = bd.DumpJson();
  EXPECT_NE(json.find("\"root\":\"op:write\""), std::string::npos);
  EXPECT_NE(json.find("\"disk:write\""), std::string::npos);
}

TEST(Analysis, FindLastTracePicksMostRecentMatchingRoot) {
  SimTime now = 0;
  Tracer t(4, &now);
  t.set_enabled(true);
  SpanRef first = t.BeginTrace("op:write", 0);
  t.End(first);
  SpanRef other = t.BeginTrace("op:read", 0);
  t.End(other);
  SpanRef second = t.BeginTrace("op:write", 0);
  t.End(second);
  EXPECT_EQ(FindLastTrace(t, "op:write"), second.ctx.trace_id);
  EXPECT_EQ(FindLastTrace(t, "op:read"), other.ctx.trace_id);
  EXPECT_EQ(FindLastTrace(t, "op:create"), 0u);
}

TEST(Analysis, MissingTraceYieldsEmptyBreakdown) {
  SimTime now = 0;
  Tracer t(6, &now);
  TraceBreakdown bd = StageBreakdown(t, 12345);
  EXPECT_EQ(bd.trace_id, 0u);
  EXPECT_EQ(bd.Coverage(), 0.0);
}

}  // namespace
}  // namespace cfs::obs
