// Timer-wheel semantics (sim/timer_wheel.h), driven through the Scheduler:
// same-tick FIFO ordering, cancel/re-arm, far-future timers crossing wheel
// levels, and RunUntil boundary behavior. The schedule-hash equivalence test
// (tests/schedule_hash_test.cc) pins the wheel's dispatch order against the
// golden hashes of the heap it replaced; this file covers the wheel's own
// contract at the edges those cluster runs don't reach.
#include "sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace cfs::sim {
namespace {

TEST(TimerWheel, SameTickRunsInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  // All at the same virtual time: dispatch must follow insertion (seq) order.
  for (int i = 0; i < 100; i++) {
    sched.At(50, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; i++) EXPECT_EQ(order[i], i);
}

TEST(TimerWheel, SameTickInsertionDuringDispatchRunsAfterEarlierInserts) {
  Scheduler sched;
  std::vector<std::string> order;
  sched.At(10, [&] {
    order.push_back("a");
    // Inserted mid-dispatch at the current tick: higher seq, so it runs
    // after everything already queued for t=10.
    sched.At(10, [&] { order.push_back("a.child"); });
  });
  sched.At(10, [&] { order.push_back("b"); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a.child"}));
}

TEST(TimerWheel, InterleavedTimesDispatchInTimeThenSeqOrder) {
  Scheduler sched;
  std::vector<int> order;
  // Insertion order deliberately scrambled across times.
  sched.At(30, [&] { order.push_back(30); });
  sched.At(10, [&] { order.push_back(10); });
  sched.At(20, [&] { order.push_back(20); });
  sched.At(10, [&] { order.push_back(11); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30}));
}

TEST(TimerWheel, CancelPreventsExecutionAndReportsStaleness) {
  Scheduler sched;
  int fired = 0;
  Scheduler::TimerId id = sched.ScheduleAfter(100, [&] { fired++; });
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_EQ(sched.pending(), 0u);
  // Double-cancel and cancel-after-run are both stale.
  EXPECT_FALSE(sched.Cancel(id));
  sched.Run();
  EXPECT_EQ(fired, 0);

  Scheduler::TimerId ran = sched.ScheduleAfter(5, [&] { fired++; });
  sched.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sched.Cancel(ran));
}

TEST(TimerWheel, CancelThenRearmFiresOnlyTheNewTimer) {
  Scheduler sched;
  std::vector<int> fired;
  Scheduler::TimerId id = sched.ScheduleAt(100, [&] { fired.push_back(1); });
  EXPECT_TRUE(sched.Cancel(id));
  // Re-arm at a different time; the recycled node must not resurrect the
  // cancelled callback or confuse the new id with the old one.
  Scheduler::TimerId id2 = sched.ScheduleAt(60, [&] { fired.push_back(2); });
  EXPECT_FALSE(sched.Cancel(id));  // old id stays stale
  sched.Run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_FALSE(sched.Cancel(id2));
}

TEST(TimerWheel, FarFutureTimersCrossWheelLevels) {
  Scheduler sched;
  std::vector<uint64_t> order;
  // One timer per wheel level: byte k of the delay is non-zero, so each is
  // filed at a different level and must cascade down as the cursor advances.
  std::vector<uint64_t> delays = {
      3,                  // level 0
      700,                // level 1
      70'000,             // level 2
      17'000'000,         // level 3
      5'000'000'000,      // level 4
      1'200'000'000'000,  // level 5
  };
  // Insert far-first so correctness can't come from insertion order.
  for (auto it = delays.rbegin(); it != delays.rend(); ++it) {
    uint64_t d = *it;
    sched.After(static_cast<SimDuration>(d), [&order, d] { order.push_back(d); });
  }
  sched.Run();
  EXPECT_EQ(order, delays);
  EXPECT_EQ(sched.Now(), static_cast<SimTime>(delays.back()));
}

TEST(TimerWheel, CascadedTimersLandOnExactTicks) {
  Scheduler sched;
  // Two timers one tick apart, far enough out to start two levels up:
  // after cascading they must still fire at distinct, exact times.
  std::vector<SimTime> at;
  sched.After(65'537, [&] { at.push_back(sched.Now()); });
  sched.After(65'536, [&] { at.push_back(sched.Now()); });
  sched.Run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 65'536);
  EXPECT_EQ(at[1], 65'537);
}

TEST(TimerWheel, RunUntilExecutesBoundaryInclusiveAndParksClock) {
  Scheduler sched;
  std::vector<int> fired;
  sched.At(10, [&] { fired.push_back(10); });
  sched.At(20, [&] { fired.push_back(20); });
  sched.At(21, [&] { fired.push_back(21); });
  sched.RunUntil(20);
  // Boundary is inclusive; later events stay queued; clock parks at t.
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sched.Now(), 20);
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(21);
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 21}));
  EXPECT_EQ(sched.Now(), 21);
}

TEST(TimerWheel, RunUntilAdvancesClockPastAnEmptyQueue) {
  Scheduler sched;
  sched.RunUntil(1'000);
  EXPECT_EQ(sched.Now(), 1'000);
  // Events scheduled "in the past" relative to the parked clock clamp to
  // Now() rather than running at a stale time.
  SimTime ran_at = -1;
  sched.At(5, [&] { ran_at = sched.Now(); });
  sched.Run();
  EXPECT_EQ(ran_at, 1'000);
}

TEST(TimerWheel, RunUntilBoundaryInsideAFarFutureGap) {
  Scheduler sched;
  int fired = 0;
  sched.After(1'000'000, [&] { fired++; });  // two levels out
  sched.RunUntil(999'999);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.Now(), 999'999);
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(1'000'000);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, DirectWheelPopRespectsLimitAndRecycles) {
  // Exercise the wheel API directly (no scheduler): PopRunnable with a
  // finite limit, lazy-cancelled debris, and node recycling.
  TimerWheel wheel;
  int fired = 0;
  (void)wheel.Insert(5, 1, [&] { fired += 1; });
  TimerWheel::TimerId dead = wheel.Insert(5, 2, [&] { fired += 100; });
  (void)wheel.Insert(9, 3, [&] { fired += 10; });
  EXPECT_TRUE(wheel.Cancel(dead));
  EXPECT_EQ(wheel.live(), 2u);

  EventNode* n = wheel.PopRunnable(7);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->time, 5);
  n->fn();
  wheel.Recycle(n);
  EXPECT_EQ(wheel.PopRunnable(7), nullptr);  // t=9 is past the limit
  n = wheel.PopRunnable(TimerWheel::kNoLimit);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->time, 9);
  n->fn();
  wheel.Recycle(n);
  EXPECT_EQ(fired, 11);
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace cfs::sim
