// VFS (POSIX facade) tests: path resolution, fd semantics, directories,
// links, rename, stat, and the relaxed-consistency behaviours of §2.7.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "vfs/vfs.h"

namespace cfs::vfs {
namespace {

using harness::Cluster;
using harness::ClusterOptions;
using harness::RunTask;
using sim::Task;

class VfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.num_nodes = 5;
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->Start())->ok());
    ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->CreateVolume("vol", 3, 6))->ok());
    auto c = RunTask(cluster_->sched(), cluster_->MountClient("vol"));
    ASSERT_TRUE(c->ok());
    fs_ = std::make_unique<FileSystem>(**c);
  }

  template <typename T>
  T Run(sim::Task<T> t) {
    auto out = RunTask(cluster_->sched(), std::move(t));
    EXPECT_TRUE(out.has_value()) << "task hung";
    return std::move(*out);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(VfsFixture, RootStat) {
  auto attr = Run(fs_->Stat("/"));
  ASSERT_TRUE(attr.ok()) << attr.status().ToString();
  EXPECT_EQ(attr->ino, meta::kRootInode);
  EXPECT_EQ(attr->type, FileType::kDir);
}

TEST_F(VfsFixture, RelativePathRejected) {
  auto attr = Run(fs_->Stat("not/absolute"));
  EXPECT_EQ(attr.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VfsFixture, MkdirAndNestedCreate) {
  ASSERT_TRUE(Run(fs_->Mkdir("/a")).ok());
  ASSERT_TRUE(Run(fs_->Mkdir("/a/b")).ok());
  ASSERT_TRUE(Run(fs_->Mkdir("/a/b/c")).ok());
  auto fd = Run(fs_->Open("/a/b/c/file.txt", kCreate | kWrite));
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  auto attr = Run(fs_->Stat("/a/b/c/file.txt"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kFile);
  // Dot and dot-dot normalization.
  auto attr2 = Run(fs_->Stat("/a/b/../b/./c/file.txt"));
  ASSERT_TRUE(attr2.ok());
  EXPECT_EQ(attr2->ino, attr->ino);
}

TEST_F(VfsFixture, MkdirInMissingParentFails) {
  EXPECT_TRUE(Run(fs_->Mkdir("/no/such/parent")).IsNotFound());
}

TEST_F(VfsFixture, OpenMissingWithoutCreateFails) {
  auto fd = Run(fs_->Open("/nope", kRead));
  EXPECT_TRUE(fd.status().IsNotFound());
}

TEST_F(VfsFixture, ExclusiveCreateFailsOnExisting) {
  ASSERT_TRUE(Run(fs_->Open("/x", kCreate | kWrite)).ok());
  auto second = Run(fs_->Open("/x", kCreate | kExclusive | kWrite));
  EXPECT_TRUE(second.status().IsAlreadyExists());
}

TEST_F(VfsFixture, WriteReadThroughFd) {
  auto fd = Run(fs_->Open("/data.bin", kCreate | kWrite | kRead));
  ASSERT_TRUE(fd.ok());
  std::string a(64 * kKiB, 'a'), b(32 * kKiB, 'b');
  auto w1 = Run(fs_->Write(*fd, a));
  ASSERT_TRUE(w1.ok());
  EXPECT_EQ(*w1, a.size());
  auto w2 = Run(fs_->Write(*fd, b));  // offset advanced
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE(Run(fs_->Fsync(*fd)).ok());

  ASSERT_TRUE(Run(fs_->Seek(*fd, 0)).ok());
  auto r = Run(fs_->Read(*fd, a.size() + b.size()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, a + b);
  // Positional read does not disturb the offset.
  auto p = Run(fs_->Pread(*fd, a.size(), b.size()));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, b);
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
}

TEST_F(VfsFixture, WriteOnReadOnlyFdFails) {
  ASSERT_TRUE(Run(fs_->Open("/ro", kCreate | kWrite)).ok());
  auto fd = Run(fs_->Open("/ro", kRead));
  ASSERT_TRUE(fd.ok());
  auto w = Run(fs_->Write(*fd, "nope"));
  EXPECT_EQ(w.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VfsFixture, AppendFlagStartsAtEof) {
  auto fd = Run(fs_->Open("/log", kCreate | kWrite));
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd, std::string(10 * kKiB, '1'))).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  auto fd2 = Run(fs_->Open("/log", kWrite | kAppend));
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd2, std::string(5 * kKiB, '2'))).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd2)).ok());
  auto attr = Run(fs_->Stat("/log"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 15 * kKiB);
}

TEST_F(VfsFixture, TruncateFlagEmptiesFile) {
  auto fd = Run(fs_->Open("/t", kCreate | kWrite));
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd, std::string(8 * kKiB, 'x'))).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  auto fd2 = Run(fs_->Open("/t", kWrite | kTruncate));
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(Run(fs_->Close(*fd2)).ok());
  auto attr = Run(fs_->Stat("/t"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST_F(VfsFixture, ListDirReturnsEntriesWithAttrs) {
  ASSERT_TRUE(Run(fs_->Mkdir("/dir")).ok());
  for (int i = 0; i < 5; i++) {
    auto fd = Run(fs_->Open("/dir/f" + std::to_string(i), kCreate | kWrite));
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(Run(fs_->Write(*fd, std::string(1024, 'z'))).ok());
    ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  }
  auto entries = Run(fs_->ListDir("/dir"));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 5u);
  for (const auto& e : *entries) {
    EXPECT_EQ(e.attr.type, FileType::kFile);
    EXPECT_EQ(e.attr.size, 1024u);
  }
}

TEST_F(VfsFixture, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(Run(fs_->Mkdir("/d")).ok());
  ASSERT_TRUE(Run(fs_->Open("/d/f", kCreate | kWrite)).ok());
  EXPECT_EQ(Run(fs_->Rmdir("/d")).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(Run(fs_->Unlink("/d/f")).ok());
  EXPECT_TRUE(Run(fs_->Rmdir("/d")).ok());
  EXPECT_TRUE(Run(fs_->Stat("/d")).status().IsNotFound());
}

TEST_F(VfsFixture, UnlinkDirectoryRejected) {
  ASSERT_TRUE(Run(fs_->Mkdir("/d2")).ok());
  EXPECT_EQ(Run(fs_->Unlink("/d2")).code(), StatusCode::kInvalidArgument);
}

TEST_F(VfsFixture, RenameAcrossDirectories) {
  ASSERT_TRUE(Run(fs_->Mkdir("/src")).ok());
  ASSERT_TRUE(Run(fs_->Mkdir("/dst")).ok());
  auto fd = Run(fs_->Open("/src/file", kCreate | kWrite));
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd, "payload")).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  ASSERT_TRUE(Run(fs_->Rename("/src/file", "/dst/moved")).ok());
  EXPECT_TRUE(Run(fs_->Stat("/src/file")).status().IsNotFound());
  auto attr = Run(fs_->Stat("/dst/moved"));
  ASSERT_TRUE(attr.ok());
  auto fd2 = Run(fs_->Open("/dst/moved", kRead));
  ASSERT_TRUE(fd2.ok());
  auto r = Run(fs_->Read(*fd2, 100));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "payload");
}

TEST_F(VfsFixture, HardLinkSharesInode) {
  auto fd = Run(fs_->Open("/orig", kCreate | kWrite));
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd, "shared-bytes")).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  ASSERT_TRUE(Run(fs_->HardLink("/orig", "/alias")).ok());
  auto a = Run(fs_->Stat("/orig"));
  auto b = Run(fs_->Stat("/alias"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ino, b->ino);
  EXPECT_EQ(b->nlink, 2u);
  ASSERT_TRUE(Run(fs_->Unlink("/orig")).ok());
  auto fd2 = Run(fs_->Open("/alias", kRead));
  ASSERT_TRUE(fd2.ok());
  auto r = Run(fs_->Read(*fd2, 100));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "shared-bytes");
}

TEST_F(VfsFixture, HardLinkToDirectoryRejected) {
  ASSERT_TRUE(Run(fs_->Mkdir("/hd")).ok());
  EXPECT_EQ(Run(fs_->HardLink("/hd", "/hd2")).code(), StatusCode::kInvalidArgument);
}

TEST_F(VfsFixture, SymlinkResolution) {
  ASSERT_TRUE(Run(fs_->Mkdir("/real")).ok());
  auto fd = Run(fs_->Open("/real/target", kCreate | kWrite));
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd, "via-symlink")).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd)).ok());
  ASSERT_TRUE(Run(fs_->Symlink("/real", "/link")).ok());
  // Path traversal through the symlinked directory.
  auto fd2 = Run(fs_->Open("/link/target", kRead));
  ASSERT_TRUE(fd2.ok()) << fd2.status().ToString();
  auto r = Run(fs_->Read(*fd2, 100));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "via-symlink");
  auto target = Run(fs_->ReadLink("/link"));
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/real");
}

TEST_F(VfsFixture, SymlinkLoopDetected) {
  ASSERT_TRUE(Run(fs_->Symlink("/l2", "/l1")).ok());
  ASSERT_TRUE(Run(fs_->Symlink("/l1", "/l2")).ok());
  auto r = Run(fs_->Stat("/l1"));
  EXPECT_FALSE(r.ok());
}

TEST_F(VfsFixture, ExistsHelper) {
  EXPECT_FALSE(*Run(fs_->Exists("/ghost")));
  ASSERT_TRUE(Run(fs_->Open("/ghost", kCreate | kWrite)).ok());
  EXPECT_TRUE(*Run(fs_->Exists("/ghost")));
}

TEST_F(VfsFixture, TwoFdsSameFileShareData) {
  auto fd1 = Run(fs_->Open("/two", kCreate | kWrite | kRead));
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(Run(fs_->Write(*fd1, std::string(4 * kKiB, 'Q'))).ok());
  ASSERT_TRUE(Run(fs_->Fsync(*fd1)).ok());
  auto fd2 = Run(fs_->Open("/two", kRead));
  ASSERT_TRUE(fd2.ok());
  auto r = Run(fs_->Read(*fd2, 4 * kKiB));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4 * kKiB);
  ASSERT_TRUE(Run(fs_->Close(*fd1)).ok());
  ASSERT_TRUE(Run(fs_->Close(*fd2)).ok());
  EXPECT_EQ(fs_->open_fds(), 0u);
}

}  // namespace
}  // namespace cfs::vfs
