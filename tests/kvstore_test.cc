// KvStore tests: WAL recovery, batch atomicity, checkpointing, scans.
#include <gtest/gtest.h>

#include "kv/kvstore.h"
#include "sim/network.h"

namespace cfs::kv {
namespace {

using sim::Spawn;
using sim::Task;

class KvFixture : public ::testing::Test {
 protected:
  KvFixture() : net_(&sched_) { host_ = net_.AddHost(); }

  std::unique_ptr<KvStore> Make(const KvOptions& opts = {}) {
    auto kv = std::make_unique<KvStore>(&host_->storage(), host_->disk(0), "test", opts);
    Run([&]() -> Task<void> { EXPECT_TRUE((co_await kv->Open()).ok()); });
    return kv;
  }

  template <typename F>
  void Run(F f) {
    Spawn(f());
    sched_.Run();
  }

  sim::Scheduler sched_;
  sim::Network net_;
  sim::Host* host_;
};

TEST_F(KvFixture, PutGetDelete) {
  auto kv = Make();
  Run([&]() -> Task<void> {
    EXPECT_TRUE((co_await kv->Put("a", "1")).ok());
    EXPECT_TRUE((co_await kv->Put("b", "2")).ok());
    std::string v;
    EXPECT_TRUE(kv->Get("a", &v));
    EXPECT_EQ(v, "1");
    EXPECT_TRUE((co_await kv->Delete("a")).ok());
    EXPECT_FALSE(kv->Get("a", &v));
    EXPECT_TRUE(kv->Get("b", &v));
  });
}

TEST_F(KvFixture, AccessBeforeOpenFails) {
  KvStore kv(&host_->storage(), host_->disk(0), "unopened");
  Run([&]() -> Task<void> {
    Status st = co_await kv.Put("a", "1");
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });
}

TEST_F(KvFixture, OverwriteKeepsLatest) {
  auto kv = Make();
  Run([&]() -> Task<void> {
    (void)co_await kv->Put("k", "v1");
    (void)co_await kv->Put("k", "v2");
    std::string v;
    EXPECT_TRUE(kv->Get("k", &v));
    EXPECT_EQ(v, "v2");
    EXPECT_EQ(kv->size(), 1u);
  });
}

TEST_F(KvFixture, RecoveryFromWal) {
  auto kv = Make();
  Run([&]() -> Task<void> {
    for (int i = 0; i < 50; i++) {
      (void)co_await kv->Put("key" + std::to_string(i), "val" + std::to_string(i));
    }
    (void)co_await kv->Delete("key7");
  });
  // Re-open a fresh store over the same stable storage (simulated restart).
  KvStore kv2(&host_->storage(), host_->disk(0), "test");
  Run([&]() -> Task<void> { EXPECT_TRUE((co_await kv2.Open()).ok()); });
  EXPECT_EQ(kv2.size(), 49u);
  std::string v;
  EXPECT_TRUE(kv2.Get("key33", &v));
  EXPECT_EQ(v, "val33");
  EXPECT_FALSE(kv2.Get("key7", &v));
}

TEST_F(KvFixture, BatchIsAtomicInWal) {
  auto kv = Make();
  Run([&]() -> Task<void> {
    WriteBatch b;
    b.Put("x", "1");
    b.Put("y", "2");
    b.Delete("x");
    EXPECT_TRUE((co_await kv->Write(std::move(b))).ok());
  });
  EXPECT_FALSE(kv->Has("x"));
  EXPECT_TRUE(kv->Has("y"));
  // One WAL record for the whole batch.
  EXPECT_EQ(kv->wal_records(), 1u);
}

TEST_F(KvFixture, CheckpointTruncatesWalAndRecovers) {
  KvOptions opts;
  opts.checkpoint_threshold = 10;
  auto kv = Make(opts);
  Run([&]() -> Task<void> {
    for (int i = 0; i < 25; i++) {
      (void)co_await kv->Put("k" + std::to_string(i), std::to_string(i));
    }
  });
  EXPECT_GE(kv->checkpoints_taken(), 2u);
  EXPECT_LT(kv->wal_records(), 10u);
  KvStore kv2(&host_->storage(), host_->disk(0), "test", opts);
  Run([&]() -> Task<void> { EXPECT_TRUE((co_await kv2.Open()).ok()); });
  EXPECT_EQ(kv2.size(), 25u);
  std::string v;
  EXPECT_TRUE(kv2.Get("k24", &v));
  EXPECT_EQ(v, "24");
}

TEST_F(KvFixture, ScanPrefix) {
  auto kv = Make();
  Run([&]() -> Task<void> {
    (void)co_await kv->Put("vol/a", "1");
    (void)co_await kv->Put("vol/b", "2");
    (void)co_await kv->Put("node/1", "3");
    (void)co_await kv->Put("vol/c", "4");
    (void)co_await kv->Put("volx", "5");
  });
  auto rows = kv->Scan("vol/");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "vol/a");
  EXPECT_EQ(rows[2].first, "vol/c");
  EXPECT_EQ(kv->Scan("zzz").size(), 0u);
}

TEST_F(KvFixture, EmptyBatchIsNoop) {
  auto kv = Make();
  Run([&]() -> Task<void> {
    EXPECT_TRUE((co_await kv->Write(WriteBatch{})).ok());
  });
  EXPECT_EQ(kv->wal_records(), 0u);
}

TEST_F(KvFixture, SeparateNamesDoNotCollide) {
  auto a = std::make_unique<KvStore>(&host_->storage(), host_->disk(0), "a");
  auto b = std::make_unique<KvStore>(&host_->storage(), host_->disk(0), "b");
  Run([&]() -> Task<void> {
    (void)co_await a->Open();
    (void)co_await b->Open();
    (void)co_await a->Put("k", "from-a");
    (void)co_await b->Put("k", "from-b");
  });
  std::string v;
  EXPECT_TRUE(a->Get("k", &v));
  EXPECT_EQ(v, "from-a");
  EXPECT_TRUE(b->Get("k", &v));
  EXPECT_EQ(v, "from-b");
}

}  // namespace
}  // namespace cfs::kv
