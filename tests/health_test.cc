// Unit + integration tests for the windowed health-telemetry layer
// (obs/timeseries.h, obs/health.h, the harness wiring in harness/cluster.h):
// ring-buffer windowing and exemplar retention, rate sampling, the
// gray-failure scorer's outlier rules and state machine, byte-stable dumps,
// and the end-to-end cluster path (observers -> series -> scorer ->
// heartbeat piggyback -> master health view).
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "obs/health.h"
#include "obs/timeseries.h"

namespace cfs::obs {
namespace {

// --- WindowedHistogram -------------------------------------------------------

TEST(WindowedHistogram, WindowsAddressedByAbsoluteIndex) {
  WindowedHistogram wh(1 * kSec, 4);
  wh.Observe(100, 500);           // window 0
  wh.Observe(1 * kSec + 1, 700);  // window 1
  wh.Observe(1 * kSec + 2, 900);  // window 1
  ASSERT_NE(wh.Find(0), nullptr);
  ASSERT_NE(wh.Find(1), nullptr);
  EXPECT_EQ(wh.Find(0)->hist.count, 1u);
  EXPECT_EQ(wh.Find(1)->hist.count, 2u);
  EXPECT_EQ(wh.Find(2), nullptr);
  EXPECT_EQ(wh.newest_window(), 1u);
  EXPECT_EQ(wh.total_samples(), 3u);
}

TEST(WindowedHistogram, OldWindowsEvictedByRingDepth) {
  WindowedHistogram wh(1 * kSec, 4);
  wh.Observe(100, 500);  // window 0
  // Jump far ahead: window 10 reuses window 0's ring slot.
  wh.Observe(10 * kSec + 1, 800);
  EXPECT_EQ(wh.Find(0), nullptr);
  ASSERT_NE(wh.Find(10), nullptr);
  EXPECT_EQ(wh.Find(10)->hist.count, 1u);
}

TEST(WindowedHistogram, ExemplarTracksWorstSamplePerWindow) {
  WindowedHistogram wh(1 * kSec, 4);
  wh.Observe(10, 500, /*trace_id=*/7);
  wh.Observe(20, 9000, /*trace_id=*/42);  // worst so far
  wh.Observe(30, 3000, /*trace_id=*/99);  // not worse: exemplar stays
  const HistWindow* w = wh.Find(0);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->worst_usec, 9000u);
  EXPECT_EQ(w->exemplar_trace, 42u);
  // A new window starts its own exemplar.
  wh.Observe(1 * kSec + 1, 100, /*trace_id=*/5);
  EXPECT_EQ(wh.Find(1)->exemplar_trace, 5u);
}

TEST(WindowedHistogram, ErrorsCountedSeparately) {
  WindowedHistogram wh(1 * kSec, 4);
  wh.Observe(10, 500);
  wh.CountError(20);
  wh.CountError(30);
  const HistWindow* w = wh.Find(0);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->hist.count, 1u);
  EXPECT_EQ(w->errors, 2u);
  EXPECT_EQ(wh.total_errors(), 2u);
}

// --- RateSeries --------------------------------------------------------------

TEST(RateSeries, FirstSampleSeedsThenDeltasPerWindow) {
  RateSeries rs(1 * kSec, 4);
  rs.Sample(100, 1000);            // seeds the baseline, delta 0
  rs.Sample(1 * kSec + 1, 1250);   // +250 lands in window 1
  rs.Sample(2 * kSec + 1, 1300);   // +50 lands in window 2
  EXPECT_EQ(rs.Delta(0), 0u);
  EXPECT_EQ(rs.Delta(1), 250u);
  EXPECT_EQ(rs.Delta(2), 50u);
}

// --- HealthScorer ------------------------------------------------------------

HealthOptions FastOptions() {
  HealthOptions o;
  // Keep the production thresholds (suspect_after=3, degraded_after=8,
  // recover_after=4) but drop the sample floors so tests can feed tiny
  // synthetic windows.
  o.min_samples = 4;
  o.min_error_ops = 4;
  return o;
}

// Feed window `w`: every cohort member gets `base` x8 samples, the target
// under test gets `target_usec` x8.
void FeedWindow(HealthScorer& s, uint64_t w, uint64_t target_usec,
                uint64_t base = 1000) {
  const SimTime t = static_cast<SimTime>(w) * kSec + 10;
  for (int i = 0; i < 8; i++) {
    s.Observe("disk", "a", t, base);
    s.Observe("disk", "b", t, base);
    s.Observe("disk", "c", t, target_usec);
  }
}

TEST(HealthScorer, EscalatesThroughSuspectToDegraded) {
  HealthScorer s(FastOptions());
  // 9 consecutive windows where c's p99 is 60x the cohort median.
  for (uint64_t w = 0; w < 9; w++) FeedWindow(s, w, 60000);
  s.Advance(10 * kSec);
  EXPECT_EQ(s.state("a"), HealthState::kHealthy);
  EXPECT_EQ(s.state("b"), HealthState::kHealthy);
  EXPECT_EQ(s.state("c"), HealthState::kDegraded);
  // Two transitions, in order: suspect at streak 3 (window 2), degraded at
  // streak 8 (window 7).
  ASSERT_EQ(s.events().size(), 2u);
  EXPECT_EQ(s.events()[0].to, HealthState::kSuspect);
  EXPECT_EQ(s.events()[0].window, 2u);
  EXPECT_EQ(s.events()[0].streak, 3u);
  EXPECT_EQ(s.events()[1].to, HealthState::kDegraded);
  EXPECT_EQ(s.events()[1].window, 7u);
  EXPECT_EQ(s.events()[1].streak, 8u);
  // The evidence rides the event: target p99 vs cohort median.
  EXPECT_GT(s.events()[0].p99_usec, s.events()[0].cohort_median_usec * 3);
  // FirstSuspectEvent finds the first upward crossing at/after a time.
  const HealthEvent* ev = s.FirstSuspectEvent("c", 0);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->window, 2u);
  EXPECT_EQ(s.FirstSuspectEvent("a", 0), nullptr);
}

TEST(HealthScorer, RecoversOneStateAtATime) {
  HealthScorer s(FastOptions());
  for (uint64_t w = 0; w < 9; w++) FeedWindow(s, w, 60000);
  s.Advance(9 * kSec);
  ASSERT_EQ(s.state("c"), HealthState::kDegraded);
  // 8 clean windows: step down to suspect after 4, to healthy after 4 more.
  for (uint64_t w = 9; w < 17; w++) FeedWindow(s, w, 1000);
  s.Advance(17 * kSec);
  EXPECT_EQ(s.state("c"), HealthState::kHealthy);
  ASSERT_EQ(s.events().size(), 4u);
  EXPECT_EQ(s.events()[2].to, HealthState::kSuspect);    // step-down 1
  EXPECT_EQ(s.events()[2].from, HealthState::kDegraded);
  EXPECT_EQ(s.events()[3].to, HealthState::kHealthy);    // step-down 2
}

TEST(HealthScorer, IdleWindowsFreezeStreaks) {
  HealthScorer s(FastOptions());
  FeedWindow(s, 0, 60000);
  FeedWindow(s, 1, 60000);  // streak 2, still healthy
  // Windows 2-3: c idle (a and b keep serving) — its streak must freeze,
  // not reset and not grow.
  for (uint64_t w = 2; w < 4; w++) {
    const SimTime t = static_cast<SimTime>(w) * kSec + 10;
    for (int i = 0; i < 8; i++) {
      s.Observe("disk", "a", t, 1000);
      s.Observe("disk", "b", t, 1000);
    }
  }
  FeedWindow(s, 4, 60000);  // streak 3 -> suspect
  s.Advance(5 * kSec);
  EXPECT_EQ(s.state("c"), HealthState::kSuspect);
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.events()[0].window, 4u);
}

TEST(HealthScorer, SmallCohortNeverLatencyScores) {
  // With only two members the cohort median is undefined (min_cohort=3):
  // no latency outlier can fire no matter how far the target detaches.
  HealthScorer s(FastOptions());
  for (uint64_t w = 0; w < 10; w++) {
    const SimTime t = static_cast<SimTime>(w) * kSec + 10;
    for (int i = 0; i < 8; i++) {
      s.Observe("disk", "a", t, 1000);
      s.Observe("disk", "c", t, 900000);
    }
  }
  s.Advance(11 * kSec);
  EXPECT_EQ(s.state("c"), HealthState::kHealthy);
  EXPECT_TRUE(s.events().empty());
}

TEST(HealthScorer, ErrorRateOutlierNeedsNoCohort) {
  // A target drowning in errors is sick even if its cohort is too small to
  // compare latencies (the whole-cohort-erroring case).
  HealthScorer s(FastOptions());
  for (uint64_t w = 0; w < 3; w++) {
    const SimTime t = static_cast<SimTime>(w) * kSec + 10;
    for (int i = 0; i < 6; i++) s.Observe("peer", "p", t, 1000);
    for (int i = 0; i < 2; i++) s.ObserveError("peer", "p", t);  // 25%
  }
  s.Advance(4 * kSec);
  EXPECT_EQ(s.state("p"), HealthState::kSuspect);
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.events()[0].errors, 2u);
}

TEST(HealthScorer, DeadIsStickyUntilMarkedAlive) {
  HealthScorer s(FastOptions());
  s.MarkDead("disk", "c", 5 * kSec);
  EXPECT_EQ(s.state("c"), HealthState::kDead);
  // Perfectly healthy traffic cannot resurrect it — only MarkAlive can.
  for (uint64_t w = 5; w < 15; w++) FeedWindow(s, w, 1000);
  s.Advance(16 * kSec);
  EXPECT_EQ(s.state("c"), HealthState::kDead);
  s.MarkAlive("disk", "c", 16 * kSec);
  EXPECT_EQ(s.state("c"), HealthState::kHealthy);
}

TEST(HealthScorer, AdvanceIsIdempotentPerWindow) {
  HealthScorer s(FastOptions());
  for (uint64_t w = 0; w < 4; w++) FeedWindow(s, w, 60000);
  s.Advance(4 * kSec);
  const size_t events = s.events().size();
  s.Advance(4 * kSec);  // same frontier: nothing rescored
  s.Advance(3 * kSec);  // going backwards: nothing rescored either
  EXPECT_EQ(s.events().size(), events);
}

TEST(HealthScorer, SummaryForFiltersByPrefix) {
  HealthScorer s(FastOptions());
  for (uint64_t w = 0; w < 4; w++) {
    const SimTime t = static_cast<SimTime>(w) * kSec + 10;
    for (int i = 0; i < 8; i++) {
      s.Observe("disk", "n0.disk0", t, 1000);
      s.Observe("disk", "n1.disk0", t, 1000);
      s.Observe("disk", "n2.disk0", t, 60000);  // the outlier
    }
  }
  s.Advance(5 * kSec);
  ASSERT_EQ(s.state("n2.disk0"), HealthState::kSuspect);
  NodeHealthSummary healthy_slice = s.SummaryFor("n0.");
  EXPECT_EQ(healthy_slice.tracked, 1u);
  EXPECT_EQ(healthy_slice.worst, 0u);
  EXPECT_TRUE(healthy_slice.unhealthy.empty());
  NodeHealthSummary sick_slice = s.SummaryFor("n2.");
  EXPECT_EQ(sick_slice.tracked, 1u);
  EXPECT_EQ(sick_slice.worst, static_cast<uint8_t>(HealthState::kSuspect));
  ASSERT_EQ(sick_slice.unhealthy.size(), 1u);
  EXPECT_EQ(sick_slice.unhealthy[0].target, "n2.disk0");
}

TEST(HealthScorer, IdenticallyFedScorersDumpIdenticalBytes) {
  auto feed = [](HealthScorer& s) {
    for (uint64_t w = 0; w < 6; w++) FeedWindow(s, w, 60000);
    s.Advance(7 * kSec);
  };
  HealthScorer s1(FastOptions()), s2(FastOptions());
  feed(s1);
  feed(s2);
  EXPECT_FALSE(s1.events().empty());
  EXPECT_EQ(s1.DumpJson(), s2.DumpJson());
  EXPECT_EQ(s1.DumpEventsJsonl(), s2.DumpEventsJsonl());
}

// --- Cluster integration -----------------------------------------------------

TEST(ClusterHealth, ObserversFeedSeriesScorerAndMasterView) {
  harness::ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = 7;
  opts.health = true;
  harness::Cluster cluster(opts);
  auto st = harness::RunTask(cluster.sched(), cluster.Start());
  ASSERT_TRUE(st && st->ok());
  st = harness::RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8));
  ASSERT_TRUE(st && st->ok());
  auto c = harness::RunTask(cluster.sched(), cluster.MountClient("v"));
  ASSERT_TRUE(c && c->ok());
  client::Client* client = **c;
  for (int i = 0; i < 4; i++) {
    auto f = harness::RunTask(
        cluster.sched(),
        client->Create(meta::kRootInode, "f" + std::to_string(i), meta::FileType::kFile));
    ASSERT_TRUE(f && f->ok());
    ASSERT_TRUE(harness::RunTask(cluster.sched(),
                                 client->Write((*f)->id, 0, std::string(256 * kKiB, 'h')))
                    ->ok());
  }
  cluster.sched().RunFor(3 * kSec);
  cluster.CollectAllNow();

  ASSERT_TRUE(cluster.health_enabled());
  // Disk observers filled the per-node write series (raft WAL writes at the
  // very least) and the rate collector sampled the counters.
  const WindowedHistogram* wr = cluster.node_series(0)->FindHist("disk.write_usec");
  ASSERT_NE(wr, nullptr);
  EXPECT_GT(wr->total_samples(), 0u);
  EXPECT_NE(cluster.node_series(0)->FindRate("disk.writes"), nullptr);
  // The shared scorer tracks cluster-wide targets with the node prefix.
  EXPECT_NE(cluster.health_scorer()->Series("n0.disk0"), nullptr);
  EXPECT_GT(cluster.health_scorer()->last_scored_window(), 0u);
  // Heartbeats piggybacked each node's slice into the master's view.
  std::string view = cluster.master_leader()->HealthViewJson();
  EXPECT_NE(view.find("\"health\""), std::string::npos);
  EXPECT_NE(view.find("\"scored_window\""), std::string::npos);
  // And the full dump carries every section.
  std::string json = cluster.HealthJson();
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"scorer\""), std::string::npos);
  EXPECT_NE(json.find("\"master\""), std::string::npos);
}

TEST(ClusterHealth, SlowDiskDetectedAgainstCrossNodeCohort) {
  // The in-vitro version of bench_health_gray_disk: run steady traffic, make
  // node 0's raft-WAL disk 8x slower, and watch the scorer cross
  // healthy -> suspect against the other nodes' equivalent disks.
  harness::ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = 9;
  opts.health = true;
  harness::Cluster cluster(opts);
  auto st = harness::RunTask(cluster.sched(), cluster.Start());
  ASSERT_TRUE(st && st->ok());
  st = harness::RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8));
  ASSERT_TRUE(st && st->ok());
  auto c = harness::RunTask(cluster.sched(), cluster.MountClient("v"));
  ASSERT_TRUE(c && c->ok());
  client::Client* client = **c;
  auto f = harness::RunTask(
      cluster.sched(), client->Create(meta::kRootInode, "load", meta::FileType::kFile));
  ASSERT_TRUE(f && f->ok());

  // Steady writer: one 128 KiB overwrite per 50 ms keeps every raft WAL
  // (disk 0 on each node) busy enough to be latency-scorable each window.
  bool stop = false;
  sim::Spawn([](harness::Cluster* cl, client::Client* cli, uint64_t ino,
                bool* stop) -> sim::Task<void> {
    uint64_t i = 0;
    while (!*stop) {
      (void)co_await cli->Write(ino, (i++ % 8) * 128 * kKiB, std::string(128 * kKiB, 'w'));
      co_await sim::SleepFor{cl->sched(), 50 * kMsec};
    }
  }(&cluster, client, (*f)->id, &stop));

  cluster.sched().RunFor(4 * kSec);  // warm-up: a few clean windows
  const SimTime injected_at = cluster.sched().Now();
  cluster.node_host(0)->disk(0)->set_slow_factor(8);
  bool detected = false;
  for (int s = 0; s < 30 && !detected; s++) {
    cluster.sched().RunFor(1 * kSec);
    detected =
        cluster.health_scorer()->FirstSuspectEvent("n0.disk0", injected_at) != nullptr;
  }
  stop = true;
  cluster.sched().RunFor(1 * kSec);
  EXPECT_TRUE(detected) << cluster.health_scorer()->DumpJson();
  EXPECT_EQ(cluster.health_scorer()->state("n0.disk0"), HealthState::kSuspect);
}

}  // namespace
}  // namespace cfs::obs
