// Property test: random operation sequences against the full CFS stack
// (VFS -> client -> meta/data subsystems -> raft -> extent stores) checked
// against a trivial in-memory reference model of a file system with CFS's
// relaxed-but-sequential semantics. One client (single history), hundreds of
// random ops per seed.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "harness/cluster.h"
#include "vfs/vfs.h"

namespace cfs::vfs {
namespace {

using harness::Cluster;
using harness::ClusterOptions;
using harness::RunTask;

/// In-memory reference model.
struct Model {
  struct Node {
    bool is_dir = false;
    std::string data;
    std::set<std::string> children;  // names, for dirs
  };
  std::map<std::string, Node> nodes;  // absolute path -> node

  Model() { nodes["/"] = Node{true, "", {}}; }

  static std::string ParentOf(const std::string& path) {
    size_t slash = path.rfind('/');
    return slash == 0 ? "/" : path.substr(0, slash);
  }
  static std::string NameOf(const std::string& path) {
    return path.substr(path.rfind('/') + 1);
  }

  bool Exists(const std::string& p) const { return nodes.count(p) > 0; }
  bool IsDir(const std::string& p) const {
    auto it = nodes.find(p);
    return it != nodes.end() && it->second.is_dir;
  }

  bool Mkdir(const std::string& p) {
    if (Exists(p) || !IsDir(ParentOf(p))) return false;
    nodes[p] = Node{true, "", {}};
    nodes[ParentOf(p)].children.insert(NameOf(p));
    return true;
  }
  bool CreateFile(const std::string& p) {
    if (Exists(p) || !IsDir(ParentOf(p))) return false;
    nodes[p] = Node{false, "", {}};
    nodes[ParentOf(p)].children.insert(NameOf(p));
    return true;
  }
  bool WriteAt(const std::string& p, uint64_t offset, const std::string& data) {
    auto it = nodes.find(p);
    if (it == nodes.end() || it->second.is_dir) return false;
    if (offset > it->second.data.size()) return false;  // no holes in CFS
    if (it->second.data.size() < offset + data.size()) {
      it->second.data.resize(offset + data.size());
    }
    it->second.data.replace(offset, data.size(), data);
    return true;
  }
  bool Unlink(const std::string& p) {
    auto it = nodes.find(p);
    if (it == nodes.end() || it->second.is_dir) return false;
    nodes[ParentOf(p)].children.erase(NameOf(p));
    nodes.erase(it);
    return true;
  }
  bool RmdirEmpty(const std::string& p) {
    auto it = nodes.find(p);
    if (p == "/" || it == nodes.end() || !it->second.is_dir || !it->second.children.empty()) {
      return false;
    }
    nodes[ParentOf(p)].children.erase(NameOf(p));
    nodes.erase(it);
    return true;
  }
};

class VfsModelTest : public ::testing::TestWithParam<int> {};

TEST_P(VfsModelTest, RandomOpsMatchReferenceModel) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = static_cast<uint64_t>(GetParam());
  Cluster cluster(opts);
  ASSERT_TRUE(RunTask(cluster.sched(), cluster.Start())->ok());
  ASSERT_TRUE(RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 6))->ok());
  auto mounted = RunTask(cluster.sched(), cluster.MountClient("v"));
  ASSERT_TRUE(mounted->ok());
  FileSystem fs(**mounted);
  auto run = [&](auto task) { return *RunTask(cluster.sched(), std::move(task)); };

  Model model;
  Rng rng(1000 + GetParam());

  // A small path universe keeps collision probability high.
  std::vector<std::string> dirs = {"/", "/a", "/b", "/a/c"};
  std::vector<std::string> names = {"x", "y", "z"};
  auto random_dir = [&] { return dirs[rng.Uniform(dirs.size())]; };
  auto random_path = [&] {
    std::string d = random_dir();
    return (d == "/" ? "" : d) + "/" + names[rng.Uniform(names.size())];
  };

  int checked_ops = 0;
  for (int step = 0; step < 220; step++) {
    switch (rng.Uniform(7)) {
      case 0: {  // mkdir
        std::string p = random_path();
        bool model_ok = model.Mkdir(p);
        Status st = run(fs.Mkdir(p));
        ASSERT_EQ(st.ok(), model_ok) << "mkdir " << p << " step " << step << ": "
                                     << st.ToString();
        if (model_ok) dirs.push_back(p);
        checked_ops++;
        break;
      }
      case 1: {  // create (exclusive)
        std::string p = random_path();
        bool model_ok = model.CreateFile(p);
        auto fd = run(fs.Open(p, kCreate | kExclusive | kWrite));
        ASSERT_EQ(fd.ok(), model_ok) << "create " << p << " step " << step;
        if (fd.ok()) ASSERT_TRUE(run(fs.Close(*fd)).ok());
        checked_ops++;
        break;
      }
      case 2: {  // write (append or in-place), sized 1-8 KiB
        std::string p = random_path();
        if (!model.Exists(p) || model.IsDir(p)) break;
        uint64_t fsize = model.nodes[p].data.size();
        uint64_t offset = fsize ? rng.Uniform(fsize + 1) : 0;
        std::string data(1 + rng.Uniform(8 * kKiB), static_cast<char>('a' + step % 26));
        bool model_ok = model.WriteAt(p, offset, data);
        auto fd = run(fs.Open(p, kWrite));
        ASSERT_TRUE(fd.ok());
        auto w = run(fs.Pwrite(*fd, offset, data));
        ASSERT_EQ(w.ok(), model_ok) << "write " << p << "@" << offset;
        ASSERT_TRUE(run(fs.Fsync(*fd)).ok());
        ASSERT_TRUE(run(fs.Close(*fd)).ok());
        checked_ops++;
        break;
      }
      case 3: {  // full read-back compare
        std::string p = random_path();
        if (!model.Exists(p) || model.IsDir(p)) break;
        const std::string& want = model.nodes[p].data;
        auto fd = run(fs.Open(p, kRead));
        ASSERT_TRUE(fd.ok()) << p;
        auto got = run(fs.Read(*fd, want.size() + 4096));
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, want) << "content mismatch on " << p << " step " << step;
        ASSERT_TRUE(run(fs.Close(*fd)).ok());
        checked_ops++;
        break;
      }
      case 4: {  // unlink
        std::string p = random_path();
        bool model_ok = model.Unlink(p);
        Status st = run(fs.Unlink(p));
        ASSERT_EQ(st.ok(), model_ok) << "unlink " << p << ": " << st.ToString();
        checked_ops++;
        break;
      }
      case 5: {  // rmdir
        std::string p = random_dir();
        if (p == "/") break;
        bool model_ok = model.RmdirEmpty(p);
        Status st = run(fs.Rmdir(p));
        ASSERT_EQ(st.ok(), model_ok) << "rmdir " << p << ": " << st.ToString();
        if (model_ok) {
          dirs.erase(std::remove(dirs.begin(), dirs.end(), p), dirs.end());
        }
        checked_ops++;
        break;
      }
      case 6: {  // listdir compare
        std::string p = random_dir();
        if (!model.Exists(p)) break;
        auto entries = run(fs.ListDir(p));
        ASSERT_TRUE(entries.ok()) << p;
        std::set<std::string> got;
        for (const auto& e : *entries) got.insert(e.name);
        ASSERT_EQ(got, model.nodes[p].children) << "listing mismatch on " << p;
        checked_ops++;
        break;
      }
    }
  }
  EXPECT_GT(checked_ops, 100);

  // Final sweep: every model file reads back exactly; every model dir lists
  // exactly; nothing extra exists.
  for (const auto& [path, node] : model.nodes) {
    if (path == "/") continue;
    if (node.is_dir) {
      auto entries = run(fs.ListDir(path));
      ASSERT_TRUE(entries.ok()) << path;
      ASSERT_EQ(entries->size(), node.children.size()) << path;
    } else {
      auto fd = run(fs.Open(path, kRead));
      ASSERT_TRUE(fd.ok()) << path;
      auto got = run(fs.Read(*fd, node.data.size() + 1));
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, node.data) << path;
      ASSERT_TRUE(run(fs.Close(*fd)).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsModelTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cfs::vfs
