// B-tree unit + randomized property tests (checked against std::map).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "meta/btree.h"

namespace cfs::meta {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree<int, int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_FALSE(t.Erase(1));
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTreeTest, InsertFindSingle) {
  BTree<int, std::string> t;
  EXPECT_TRUE(t.Insert(5, "five"));
  ASSERT_NE(t.Find(5), nullptr);
  EXPECT_EQ(*t.Find(5), "five");
  EXPECT_EQ(t.Find(4), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, DuplicateInsertRejected) {
  BTree<int, int> t;
  EXPECT_TRUE(t.Insert(1, 10));
  EXPECT_FALSE(t.Insert(1, 20));
  EXPECT_EQ(*t.Find(1), 10);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, UpsertOverwrites) {
  BTree<int, int> t;
  t.Upsert(1, 10);
  t.Upsert(1, 20);
  EXPECT_EQ(*t.Find(1), 20);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, SequentialInsertCausesSplits) {
  BTree<int, int, std::less<int>, 2> t;  // tiny degree: splits early
  for (int i = 0; i < 1000; i++) EXPECT_TRUE(t.Insert(i, i * 2));
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_TRUE(t.CheckInvariants());
  for (int i = 0; i < 1000; i++) {
    ASSERT_NE(t.Find(i), nullptr) << i;
    EXPECT_EQ(*t.Find(i), i * 2);
  }
}

TEST(BTreeTest, ReverseInsert) {
  BTree<int, int, std::less<int>, 3> t;
  for (int i = 999; i >= 0; i--) EXPECT_TRUE(t.Insert(i, i));
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.size(), 1000u);
}

TEST(BTreeTest, EraseLeafAndInternal) {
  BTree<int, int, std::less<int>, 2> t;
  for (int i = 0; i < 100; i++) t.Insert(i, i);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(t.Erase(i));
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.size(), 50u);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(t.Find(i) != nullptr, i % 2 == 1) << i;
  }
}

TEST(BTreeTest, EraseAllThenReuse) {
  BTree<int, int, std::less<int>, 2> t;
  for (int i = 0; i < 256; i++) t.Insert(i, i);
  for (int i = 0; i < 256; i++) EXPECT_TRUE(t.Erase(i)) << i;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.CheckInvariants());
  for (int i = 0; i < 64; i++) EXPECT_TRUE(t.Insert(i, -i));
  EXPECT_EQ(t.size(), 64u);
}

TEST(BTreeTest, AscendVisitsInOrder) {
  BTree<int, int, std::less<int>, 2> t;
  for (int i : {5, 3, 8, 1, 9, 2, 7, 4, 6, 0}) t.Insert(i, i * i);
  std::vector<int> seen;
  t.Ascend([&](const int& k, const int& v) {
    EXPECT_EQ(v, k * k);
    seen.push_back(k);
    return true;
  });
  for (int i = 0; i < 10; i++) EXPECT_EQ(seen[i], i);
}

TEST(BTreeTest, AscendFromStartsAtLowerBound) {
  BTree<int, int, std::less<int>, 2> t;
  for (int i = 0; i < 100; i += 2) t.Insert(i, i);  // evens only
  std::vector<int> seen;
  t.AscendFrom(31, [&](const int& k, const int&) {
    seen.push_back(k);
    return seen.size() < 5;
  });
  EXPECT_EQ(seen, (std::vector<int>{32, 34, 36, 38, 40}));
}

TEST(BTreeTest, AscendEarlyStop) {
  BTree<int, int> t;
  for (int i = 0; i < 1000; i++) t.Insert(i, i);
  int count = 0;
  t.Ascend([&](const int&, const int&) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

TEST(BTreeTest, StringKeysWithRangeScan) {
  // Mirrors the dentryTree use: (parent, name) keys scanned per parent.
  BTree<std::pair<uint64_t, std::string>, int> t;
  t.Insert({1, "a"}, 1);
  t.Insert({1, "b"}, 2);
  t.Insert({2, "a"}, 3);
  t.Insert({2, "z"}, 4);
  t.Insert({3, "m"}, 5);
  std::vector<int> parent2;
  t.AscendFrom({2, ""}, [&](const auto& k, const int& v) {
    if (k.first != 2) return false;
    parent2.push_back(v);
    return true;
  });
  EXPECT_EQ(parent2, (std::vector<int>{3, 4}));
}

class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, MatchesStdMapUnderRandomOps) {
  Rng rng(GetParam());
  BTree<uint64_t, uint64_t, std::less<uint64_t>, 3> tree;
  std::map<uint64_t, uint64_t> model;
  const uint64_t key_space = 500;
  for (int step = 0; step < 20000; step++) {
    uint64_t key = rng.Uniform(key_space);
    switch (rng.Uniform(3)) {
      case 0: {  // insert
        bool inserted = tree.Insert(key, step);
        bool model_inserted = model.emplace(key, step).second;
        ASSERT_EQ(inserted, model_inserted) << "step " << step;
        break;
      }
      case 1: {  // erase
        ASSERT_EQ(tree.Erase(key), model.erase(key) > 0) << "step " << step;
        break;
      }
      case 2: {  // find
        const uint64_t* v = tree.Find(key);
        auto it = model.find(key);
        ASSERT_EQ(v != nullptr, it != model.end()) << "step " << step;
        if (v) ASSERT_EQ(*v, it->second);
        break;
      }
    }
    if (step % 2000 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "step " << step;
      ASSERT_EQ(tree.size(), model.size());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), model.size());
  // Full-order comparison.
  auto it = model.begin();
  bool order_ok = true;
  tree.Ascend([&](const uint64_t& k, const uint64_t& v) {
    if (it == model.end() || it->first != k || it->second != v) {
      order_ok = false;
      return false;
    }
    ++it;
    return true;
  });
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest, ::testing::Values(1, 2, 3, 7, 13, 99));

TEST(BTreePropertyTest, LargeDegreeRandomChurn) {
  Rng rng(4242);
  BTree<uint64_t, uint64_t> tree;  // default degree 16
  std::map<uint64_t, uint64_t> model;
  for (int step = 0; step < 30000; step++) {
    uint64_t key = rng.Uniform(2000);
    if (rng.Chance(0.6)) {
      tree.Insert(key, step);
      model.emplace(key, step);
    } else {
      tree.Erase(key);
      model.erase(key);
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), model.size());
}

}  // namespace
}  // namespace cfs::meta
