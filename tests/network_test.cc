// Transport-level tests for the zero-allocation RPC engine (sim/network.h):
// pooled envelopes, slab promise slots, dense-id dispatch, audited watchdog
// cancellation, and the fault paths (drops, partitions, dead nodes).
//
// TransportGoldenHash pins the determinism digest of a mixed fault workload
// to the value captured from the pre-registry boxing transport: the rebuild
// must not move a single (from, to, bytes, type, time) tuple or (time, seq)
// pair. Re-capture (only for a deliberate schedule-changing transport
// change) by running this scenario against the old engine and updating the
// constants — the struct names and namespace nesting below feed the digest
// via RTTI and must not change.
#include <gtest/gtest.h>

#include "sim/msg_type.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace cfs::sim {
namespace {

struct NetEchoReq {
  uint64_t x = 0;
};
struct NetEchoResp {
  uint64_t x = 0;
};
struct NetBulkReq {
  size_t bytes = 0;
  size_t WireBytes() const { return bytes; }
};
struct NetBulkResp {
  uint64_t bytes = 0;
};

void RegisterGoldenHandlers(Host* h) {
  h->Register<NetEchoReq, NetEchoResp>([](NetEchoReq r, NodeId) -> Task<NetEchoResp> {
    co_return NetEchoResp{r.x * 3};
  });
  h->Register<NetBulkReq, NetBulkResp>([](NetBulkReq r, NodeId) -> Task<NetBulkResp> {
    co_return NetBulkResp{r.bytes};
  });
}

Task<void> GoldenClient(Network& net, NodeId self, NodeId peer, uint64_t* ok,
                        uint64_t* failed) {
  for (uint64_t i = 0; i < 24; i++) {
    auto r = co_await net.Call<NetEchoReq, NetEchoResp>(self, peer, NetEchoReq{i},
                                                        400 * kMsec);
    if (r.ok()) {
      (*ok)++;
    } else {
      (*failed)++;
    }
    if (i % 6 == 0) {
      auto b = co_await net.Call<NetBulkReq, NetBulkResp>(self, peer,
                                                          NetBulkReq{256 * kKiB}, 2 * kSec);
      if (b.ok()) {
        (*ok)++;
      } else {
        (*failed)++;
      }
    }
  }
}

struct GoldenResult {
  uint64_t hash = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t timeouts_cancelled = 0;
  uint64_t timeouts_fired = 0;
  size_t envelopes_in_use = 0;
  size_t slots_in_use = 0;
};

/// Mixed transport workload: concurrent clients, message loss (RNG-driven
/// drops), a partition, and a crashed host — every path that feeds MixTrace
/// and the timeout watchdogs.
GoldenResult TransportGoldenScenario() {
  Scheduler sched(4242);
  Network net(&sched);
  net.AddHost();
  net.AddHost();
  net.AddHost();
  RegisterGoldenHandlers(net.host(2));
  RegisterGoldenHandlers(net.host(3));
  GoldenResult res;
  // Wave 1: clean traffic (every watchdog is cancelled by its reply).
  Spawn(GoldenClient(net, 1, 2, &res.ok, &res.failed));
  Spawn(GoldenClient(net, 1, 3, &res.ok, &res.failed));
  Spawn(GoldenClient(net, 2, 3, &res.ok, &res.failed));
  sched.Run();
  // Wave 2: message loss — RNG-driven drops, watchdogs fire for real.
  net.SetDropProbability(0.2);
  Spawn(GoldenClient(net, 1, 2, &res.ok, &res.failed));
  Spawn(GoldenClient(net, 2, 3, &res.ok, &res.failed));
  sched.Run();
  net.SetDropProbability(0);
  // Wave 3: partitioned pair times out, the healthy pair keeps flowing.
  net.SetPartitioned(1, 3, true);
  Spawn(GoldenClient(net, 1, 3, &res.ok, &res.failed));
  Spawn(GoldenClient(net, 1, 2, &res.ok, &res.failed));
  sched.Run();
  net.SetPartitioned(1, 3, false);
  // Wave 4: dead destination — requests vanish on delivery.
  net.host(3)->Crash();
  Spawn(GoldenClient(net, 2, 3, &res.ok, &res.failed));
  Spawn(GoldenClient(net, 1, 2, &res.ok, &res.failed));
  sched.Run();
  net.host(3)->Restart();
  // Wave 5: recovered host serves again.
  Spawn(GoldenClient(net, 1, 3, &res.ok, &res.failed));
  sched.Run();
  res.hash = sched.trace_hash();
  res.timeouts_cancelled = net.rpc_timeouts_cancelled();
  res.timeouts_fired = net.rpc_timeouts_fired();
  res.envelopes_in_use = net.envelope_pool().in_use();
  res.slots_in_use = net.rpc_slots_in_use();
  return res;
}

// Captured from the pre-change std::any/type_index/shared_ptr transport
// (seed 4242). The zero-allocation engine must reproduce it byte for byte.
constexpr uint64_t kGoldenTransportHash = 0x2196caf85bdd72fdull;
constexpr uint64_t kGoldenOk = 197;
constexpr uint64_t kGoldenFailed = 83;

TEST(NetworkTransport, TransportGoldenHash) {
  GoldenResult r = TransportGoldenScenario();
  EXPECT_EQ(r.hash, kGoldenTransportHash);
  EXPECT_EQ(r.ok, kGoldenOk);
  EXPECT_EQ(r.failed, kGoldenFailed);
  // Every successful call cancelled its watchdog (audited); every failed
  // call let it fire. Nothing pooled leaks once the run drains.
  EXPECT_EQ(r.timeouts_cancelled, r.ok);
  EXPECT_EQ(r.timeouts_fired, r.failed);
  EXPECT_EQ(r.envelopes_in_use, 0u);
  EXPECT_EQ(r.slots_in_use, 0u);
}

TEST(NetworkTransport, SameSeedSameHash) {
  GoldenResult a = TransportGoldenScenario();
  GoldenResult b = TransportGoldenScenario();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failed, b.failed);
}

Task<void> OneEcho(Network& net, NodeId self, NodeId peer, SimDuration timeout,
                   uint64_t* ok, uint64_t* failed) {
  auto r = co_await net.Call<NetEchoReq, NetEchoResp>(self, peer, NetEchoReq{7}, timeout);
  if (r.ok()) {
    EXPECT_EQ(r->x, 21u);
    (*ok)++;
  } else {
    EXPECT_TRUE(r.status().IsTimedOut());
    (*failed)++;
  }
}

TEST(NetworkTransport, DeadNodeDropsRequestAndFiresWatchdog) {
  Scheduler sched(7);
  Network net(&sched);
  net.AddHost();
  net.AddHost();
  RegisterGoldenHandlers(net.host(2));
  net.host(2)->Crash();
  uint64_t ok = 0, failed = 0;
  Spawn(OneEcho(net, 1, 2, 200 * kMsec, &ok, &failed));
  sched.Run();
  EXPECT_EQ(ok, 0u);
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(net.rpc_timeouts_fired(), 1u);
  EXPECT_EQ(net.rpc_timeouts_cancelled(), 0u);
  // The dropped request's envelope went back to the pool.
  EXPECT_EQ(net.envelope_pool().in_use(), 0u);
  EXPECT_EQ(net.rpc_slots_in_use(), 0u);
}

TEST(NetworkTransport, PartitionIsSymmetric) {
  Scheduler sched(7);
  Network net(&sched);
  net.AddHost();
  net.AddHost();
  RegisterGoldenHandlers(net.host(1));
  RegisterGoldenHandlers(net.host(2));
  net.SetPartitioned(2, 1, true);  // either argument order
  EXPECT_TRUE(net.IsPartitioned(1, 2));
  EXPECT_TRUE(net.IsPartitioned(2, 1));
  uint64_t ok = 0, failed = 0;
  Spawn(OneEcho(net, 1, 2, 200 * kMsec, &ok, &failed));
  Spawn(OneEcho(net, 2, 1, 200 * kMsec, &ok, &failed));
  sched.Run();
  EXPECT_EQ(failed, 2u);
  net.SetPartitioned(1, 2, false);
  Spawn(OneEcho(net, 1, 2, 200 * kMsec, &ok, &failed));
  Spawn(OneEcho(net, 2, 1, 200 * kMsec, &ok, &failed));
  sched.Run();
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(failed, 2u);
}

TEST(NetworkTransport, DropProbabilityIsDeterministic) {
  auto run = [] {
    Scheduler sched(99);
    Network net(&sched);
    net.AddHost();
    net.AddHost();
    RegisterGoldenHandlers(net.host(2));
    net.SetDropProbability(0.3);
    uint64_t ok = 0, failed = 0;
    Spawn(GoldenClient(net, 1, 2, &ok, &failed));
    sched.Run();
    return std::tuple{sched.trace_hash(), ok, failed};
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  // The loss rate actually bit: some calls failed, some survived.
  EXPECT_GT(std::get<1>(a), 0u);
  EXPECT_GT(std::get<2>(a), 0u);
}

TEST(NetworkTransport, ClearHandlersDecommissionsNode) {
  Scheduler sched(7);
  Network net(&sched);
  net.AddHost();
  net.AddHost();
  RegisterGoldenHandlers(net.host(2));
  uint64_t ok = 0, failed = 0;
  Spawn(OneEcho(net, 1, 2, 200 * kMsec, &ok, &failed));
  sched.Run();
  EXPECT_EQ(ok, 1u);
  net.host(2)->ClearHandlers();
  EXPECT_EQ(net.host(2)->FindHandler(MsgTypeIdOf<NetEchoReq>()), nullptr);
  Spawn(OneEcho(net, 1, 2, 200 * kMsec, &ok, &failed));
  sched.Run();
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(net.envelope_pool().in_use(), 0u);
}

Task<void> SequentialEchoes(Network& net, int n, uint64_t* ok, uint64_t* failed) {
  for (int i = 0; i < n; i++) {
    co_await OneEcho(net, 1, 2, 200 * kMsec, ok, failed);
  }
}

TEST(NetworkTransport, EnvelopeAndSlotSlabsAreRecycled) {
  Scheduler sched(7);
  Network net(&sched);
  net.AddHost();
  net.AddHost();
  RegisterGoldenHandlers(net.host(2));
  uint64_t ok = 0, failed = 0;
  Spawn(SequentialEchoes(net, 500, &ok, &failed));
  sched.Run();
  EXPECT_EQ(ok, 500u);
  EXPECT_EQ(failed, 0u);
  // 500 sequential calls reuse the same handful of nodes: one pool chunk and
  // a couple of slots, never one-per-call.
  EXPECT_EQ(net.envelope_pool().in_use(), 0u);
  EXPECT_LE(net.envelope_pool().capacity(), 128u);
  EXPECT_EQ(net.rpc_slots_in_use(), 0u);
  EXPECT_LE(net.rpc_slot_capacity(), 4u);
}

TEST(NetworkTransport, SpanLabelsAreInterned) {
  // One allocation per type at registration; repeated lookups return the
  // same string object.
  const std::string& a = MsgSpanRpc<NetEchoReq>();
  const std::string& b = MsgSpanRpc<NetEchoReq>();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(MsgSpanHandler<NetEchoReq>().substr(0, 8), "handler:");
  EXPECT_EQ(MsgSpanCall<NetEchoReq>().substr(0, 5), "call:");
  EXPECT_EQ(MsgTypeIdOf<NetEchoReq>(), MsgTypeIdOf<NetEchoReq>());
}

}  // namespace
}  // namespace cfs::sim
