// End-to-end integration tests: full CFS cluster (3 masters + storage
// nodes), volume lifecycle, metadata workflows, file I/O paths, caching,
// failure handling, recovery, splitting, expansion.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;
using sim::Task;

class CfsCluster : public ::testing::Test {
 protected:
  void Boot(ClusterOptions opts = {}, uint32_t meta_parts = 3, uint32_t data_parts = 8) {
    if (opts.num_nodes == 10 && testing::UnitTest::GetInstance() != nullptr) {
      opts.num_nodes = 5;  // smaller cluster keeps tests fast
    }
    cluster_ = std::make_unique<Cluster>(opts);
    auto st = RunTask(cluster_->sched(), cluster_->Start());
    ASSERT_TRUE(st.has_value() && st->ok()) << (st ? st->ToString() : "hung");
    st = RunTask(cluster_->sched(), cluster_->CreateVolume("vol", meta_parts, data_parts));
    ASSERT_TRUE(st.has_value() && st->ok()) << (st ? st->ToString() : "hung");
    auto c = RunTask(cluster_->sched(), cluster_->MountClient("vol"));
    ASSERT_TRUE(c.has_value() && c->ok()) << (c ? c->status().ToString() : "hung");
    client_ = **c;
  }

  /// Run a client coroutine to completion.
  template <typename T>
  T Run(sim::Task<T> t) {
    auto out = RunTask(cluster_->sched(), std::move(t));
    EXPECT_TRUE(out.has_value()) << "task hung";
    return std::move(*out);
  }

  /// Deep-check every cluster invariant (common/check.h); call at scenario
  /// checkpoints. Also runs from TearDown so every test ends with a sweep.
  void ExpectInvariantsHold(const char* when) {
    if (!cluster_) return;
    InvariantReport report = cluster_->CheckInvariants();
    EXPECT_TRUE(report.ok()) << "invariant violations " << when << ":\n"
                             << report.ToString();
  }

  void TearDown() override { ExpectInvariantsHold("at test end"); }

  std::unique_ptr<Cluster> cluster_;
  Client* client_ = nullptr;
};

TEST_F(CfsCluster, VolumeViewHasPartitions) {
  Boot();
  master::MasterNode* leader = cluster_->master_leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->state().meta_partitions().size(), 3u);
  EXPECT_EQ(leader->state().data_partitions().size(), 8u);
  // Every partition has 3 replicas on registered nodes.
  for (const auto& [pid, rec] : leader->state().data_partitions()) {
    EXPECT_EQ(rec.replicas.size(), 3u);
  }
}

TEST_F(CfsCluster, CreateLookupReadDir) {
  Boot();
  auto created = Run(client_->Create(kRootInode, "hello.txt", FileType::kFile));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_GE(created->id, 1u);
  EXPECT_EQ(created->nlink, 1u);

  auto looked = Run(client_->Lookup(kRootInode, "hello.txt"));
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(looked->inode, created->id);

  auto listed = Run(client_->ReadDir(kRootInode));
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].name, "hello.txt");
}

TEST_F(CfsCluster, CreateManyFilesAcrossPartitions) {
  Boot();
  std::set<uint64_t> ids;
  for (int i = 0; i < 60; i++) {
    auto r = Run(client_->Create(kRootInode, "f" + std::to_string(i), FileType::kFile));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(ids.insert(r->id).second) << "duplicate inode id " << r->id;
  }
  ExpectInvariantsHold("after create batch");
  auto listed = Run(client_->ReadDir(kRootInode));
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 60u);
  // Inode ids span multiple partitions (ranges are chunked).
  master::MasterNode* leader = cluster_->master_leader();
  size_t used_partitions = 0;
  for (const auto& [pid, rec] : leader->state().meta_partitions()) {
    for (uint64_t id : ids) {
      if (id >= rec.start && id <= rec.end) {
        used_partitions++;
        break;
      }
    }
  }
  EXPECT_GE(used_partitions, 2u);
}

TEST_F(CfsCluster, DuplicateCreateFails) {
  Boot();
  ASSERT_TRUE(Run(client_->Create(kRootInode, "dup", FileType::kFile)).ok());
  auto second = Run(client_->Create(kRootInode, "dup", FileType::kFile));
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsAlreadyExists());
  // The orphaned inode from the failed create is tracked and evictable.
  EXPECT_EQ(client_->stats().orphans_created, 1u);
  EXPECT_EQ(client_->orphan_count(), 1u);
  Run([](Client* c) -> Task<bool> {
    co_await c->EvictOrphans();
    co_return true;
  }(client_));
  EXPECT_EQ(client_->orphan_count(), 0u);
}

TEST_F(CfsCluster, WriteReadSmallFile) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "small.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  std::string content(4 * kKiB, 'x');
  for (size_t i = 0; i < content.size(); i++) content[i] = static_cast<char>('a' + i % 26);
  ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Fsync(f->id)).ok());
  auto read = Run(client_->Read(f->id, 0, content.size()));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, content);
  // Small files live at a non-zero physical offset once the tiny extent has
  // other occupants.
  auto g = Run(client_->Create(kRootInode, "small2.bin", FileType::kFile));
  ASSERT_TRUE(Run(client_->Write(g->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Fsync(g->id)).ok());
  auto read2 = Run(client_->Read(g->id, 0, content.size()));
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ(*read2, content);
}

TEST_F(CfsCluster, WriteReadLargeFileAcrossPackets) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "big.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  // 600 KiB: several 128 KiB packets, still one extent.
  std::string content(600 * kKiB, '\0');
  for (size_t i = 0; i < content.size(); i++) content[i] = static_cast<char>(i * 131 % 251);
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Fsync(f->id)).ok());
  auto read = Run(client_->Read(f->id, 0, content.size()));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), content.size());
  EXPECT_EQ(*read, content);
  // Ranged read.
  auto mid = Run(client_->Read(f->id, 100 * kKiB, 64 * kKiB));
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, content.substr(100 * kKiB, 64 * kKiB));
}

TEST_F(CfsCluster, AppendAcrossWriteCalls) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "log.txt", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  std::string part1(200 * kKiB, 'A'), part2(150 * kKiB, 'B');
  ASSERT_TRUE(Run(client_->Write(f->id, 0, part1)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, part1.size(), part2)).ok());
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  auto read = Run(client_->Read(f->id, 0, part1.size() + part2.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, part1 + part2);
}

TEST_F(CfsCluster, RandomOverwriteInPlace) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "rw.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  std::string content(256 * kKiB, 'o');
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Fsync(f->id)).ok());
  // Overwrite a 4 KiB region in the middle (raft path, Fig. 5).
  std::string patch(4 * kKiB, 'P');
  ASSERT_TRUE(Run(client_->Write(f->id, 100 * kKiB, patch)).ok());
  auto read = Run(client_->Read(f->id, 0, content.size()));
  ASSERT_TRUE(read.ok());
  std::string expect = content;
  expect.replace(100 * kKiB, patch.size(), patch);
  EXPECT_EQ(*read, expect);
  // File size unchanged: overwrite is in-place, no metadata update (§2.7.2).
  auto ino = Run(client_->GetInode(f->id));
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(ino->size, content.size());
}

TEST_F(CfsCluster, WriteStraddlingEofSplitsOverwriteAndAppend) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "straddle.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  std::string base(200 * kKiB, 'x');
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, base)).ok());
  // Write 100 KiB starting 50 KiB before EOF: half overwrite, half append.
  std::string straddle(100 * kKiB, 'S');
  ASSERT_TRUE(Run(client_->Write(f->id, 150 * kKiB, straddle)).ok());
  ASSERT_TRUE(Run(client_->Fsync(f->id)).ok());
  auto read = Run(client_->Read(f->id, 0, 250 * kKiB));
  ASSERT_TRUE(read.ok());
  std::string expect = base;
  expect.resize(250 * kKiB, '\0');
  expect.replace(150 * kKiB, straddle.size(), straddle);
  EXPECT_EQ(*read, expect);
}

TEST_F(CfsCluster, UnlinkDeletesAndPurgesContent) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "doomed.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  std::string content(300 * kKiB, 'd');
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());

  uint64_t bytes_before = 0;
  for (int i = 0; i < cluster_->num_nodes(); i++) {
    for (const auto& rep : cluster_->data_node(i)->Reports()) bytes_before += rep.used_bytes;
  }
  EXPECT_GT(bytes_before, 0u);

  ASSERT_TRUE(Run(client_->Unlink(kRootInode, "doomed.bin")).ok());
  auto looked = Run(client_->Lookup(kRootInode, "doomed.bin"));
  EXPECT_TRUE(looked.status().IsNotFound());

  // The async purge loop (§2.7.3) frees the extents.
  bool purged = cluster_->RunUntil([&] {
    uint64_t bytes = 0;
    for (int i = 0; i < cluster_->num_nodes(); i++) {
      for (const auto& rep : cluster_->data_node(i)->Reports()) bytes += rep.used_bytes;
    }
    return bytes < bytes_before;
  });
  EXPECT_TRUE(purged);
}

TEST_F(CfsCluster, SmallFileDeleteUsesPunchHole) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "tiny.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, std::string(8 * kKiB, 't'))).ok());
  ASSERT_TRUE(Run(client_->Fsync(f->id)).ok());
  ASSERT_TRUE(Run(client_->Unlink(kRootInode, "tiny.bin")).ok());
  bool punched = cluster_->RunUntil([&] {
    for (int i = 0; i < cluster_->num_nodes(); i++) {
      sim::Host* h = cluster_->node_host(i);
      for (int d = 0; d < h->num_disks(); d++) {
        if (h->disk(d)->punched_bytes() > 0) return true;
      }
    }
    return false;
  });
  EXPECT_TRUE(punched);
}

TEST_F(CfsCluster, HardLinkKeepsFileAliveAfterOneUnlink) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "orig", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Link(kRootInode, "alias", f->id)).ok());
  ASSERT_TRUE(Run(client_->Unlink(kRootInode, "orig")).ok());
  cluster_->sched().RunFor(1 * kSec);  // async nlink decrement (§2.7.3)
  auto looked = Run(client_->Lookup(kRootInode, "alias"));
  ASSERT_TRUE(looked.ok());
  auto ino = Run(client_->GetInode(f->id));
  ASSERT_TRUE(ino.ok()) << ino.status().ToString();
  EXPECT_EQ(ino->nlink, 1u);
  EXPECT_FALSE(ino->IsDeleted());
}

TEST_F(CfsCluster, RenameMovesDentry) {
  Boot();
  auto dir = Run(client_->Create(kRootInode, "sub", FileType::kDir));
  ASSERT_TRUE(dir.ok());
  auto f = Run(client_->Create(kRootInode, "old", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Rename(kRootInode, "old", dir->id, "new")).ok());
  EXPECT_TRUE(Run(client_->Lookup(kRootInode, "old")).status().IsNotFound());
  auto looked = Run(client_->Lookup(dir->id, "new"));
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(looked->inode, f->id);
}

TEST_F(CfsCluster, ReadDirPlusBatchesAndCaches) {
  Boot();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(Run(client_->Create(kRootInode, "e" + std::to_string(i), FileType::kFile)).ok());
  }
  client_->mutable_stats() = {};
  auto first = Run(client_->ReadDirPlus(kRootInode));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 20u);
  uint64_t rpcs_after_first = client_->stats().meta_rpcs;
  // One readdir + at most one batch get per meta partition — far fewer than
  // one RPC per inode (the Ceph model's behaviour).
  EXPECT_LE(rpcs_after_first, 1 + 3u);
  // Second call inside the TTL: served from the client cache (§4.2).
  auto second = Run(client_->ReadDirPlus(kRootInode));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(client_->stats().meta_rpcs, rpcs_after_first);
}

TEST_F(CfsCluster, SymlinkStoresTarget) {
  Boot();
  auto s = Run(client_->Create(kRootInode, "lnk", FileType::kSymlink, "/vol/target"));
  ASSERT_TRUE(s.ok());
  auto ino = Run(client_->GetInode(s->id));
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(ino->link_target, "/vol/target");
}

TEST_F(CfsCluster, TruncateShrinksFile) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "trunc.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, std::string(256 * kKiB, 'T'))).ok());
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  ASSERT_TRUE(Run(client_->Truncate(f->id, 10 * kKiB)).ok());
  auto ino = Run(client_->GetInode(f->id));
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(ino->size, 10 * kKiB);
  auto read = Run(client_->Read(f->id, 0, 256 * kKiB));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 10 * kKiB);
}

TEST_F(CfsCluster, TwoClientsShareVolume) {
  Boot();
  auto c2r = RunTask(cluster_->sched(), cluster_->MountClient("vol"));
  ASSERT_TRUE(c2r.has_value() && c2r->ok());
  Client* c2 = **c2r;
  auto f = Run(client_->Create(kRootInode, "shared.txt", FileType::kFile));
  ASSERT_TRUE(f.ok());
  std::string content(64 * kKiB, 's');
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  // Client 2 sees the file via lookup and reads the same bytes.
  auto looked = Run(c2->Lookup(kRootInode, "shared.txt"));
  ASSERT_TRUE(looked.ok());
  auto read = Run(c2->Read(looked->inode, 0, content.size()));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, content);
}

TEST_F(CfsCluster, DataNodeCrashDoesNotLoseCommittedData) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "durable.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  std::string content(256 * kKiB, 'D');
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());

  // Crash one storage node; reads keep working off the remaining replicas
  // (the client probes replicas and caches the new leader, §2.4).
  cluster_->CrashNode(1);
  cluster_->sched().RunFor(3 * kSec);
  auto read = Run(client_->Read(f->id, 0, content.size()));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, content);

  // Restart + recover; the node aligns extents and rejoins.
  auto done = RunTask(cluster_->sched(), [](Cluster* c) -> Task<bool> {
    co_await c->RestartNode(1);
    co_return true;
  }(cluster_.get()));
  ASSERT_TRUE(done.has_value());
  cluster_->sched().RunFor(3 * kSec);
  ExpectInvariantsHold("after crash/restart recovery");
  auto read2 = Run(client_->Read(f->id, 0, content.size()));
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ(*read2, content);
}

TEST_F(CfsCluster, MetaNodeCrashFailoverServesMetadata) {
  Boot();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Run(client_->Create(kRootInode, "m" + std::to_string(i), FileType::kFile)).ok());
  }
  cluster_->CrashNode(0);
  cluster_->sched().RunFor(3 * kSec);  // raft failover on affected partitions
  auto listed = Run(client_->ReadDir(kRootInode));
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  EXPECT_EQ(listed->size(), 10u);
  // New creates still work.
  auto f = Run(client_->Create(kRootInode, "after-crash", FileType::kFile));
  EXPECT_TRUE(f.ok()) << f.status().ToString();
}

TEST_F(CfsCluster, DeadNodeMarksPartitionsReadOnly) {
  Boot();
  // Crash a node that actually hosts a data partition.
  master::MasterNode* l0 = cluster_->master_leader();
  ASSERT_NE(l0, nullptr);
  ASSERT_FALSE(l0->state().data_partitions().empty());
  sim::NodeId victim_id = l0->state().data_partitions().begin()->second.replicas[0];
  int victim = -1;
  for (int i = 0; i < cluster_->num_nodes(); i++) {
    if (cluster_->node_host(i)->id() == victim_id) victim = i;
  }
  ASSERT_GE(victim, 0);
  cluster_->CrashNode(victim);
  master::MasterNode* leader = cluster_->master_leader();
  ASSERT_NE(leader, nullptr);
  // After the node-timeout the master marks affected partitions read-only
  // (§2.3.3).
  bool marked = cluster_->RunUntil([&] {
    master::MasterNode* l = cluster_->master_leader();
    if (!l) return false;
    for (const auto& [pid, rec] : l->state().data_partitions()) {
      for (auto r : rec.replicas) {
        if (r == victim_id && rec.read_only) return true;
      }
    }
    return false;
  });
  EXPECT_TRUE(marked);
}

TEST_F(CfsCluster, MasterFailoverPreservesClusterMap) {
  Boot();
  master::MasterNode* leader = cluster_->master_leader();
  ASSERT_NE(leader, nullptr);
  size_t partitions = leader->state().data_partitions().size();
  leader->host()->Crash();
  bool new_leader = cluster_->RunUntil([&] {
    master::MasterNode* l = cluster_->master_leader();
    return l != nullptr && l != leader;
  });
  ASSERT_TRUE(new_leader);
  EXPECT_EQ(cluster_->master_leader()->state().data_partitions().size(), partitions);
  // Clients keep working (they probe master replicas).
  auto f = Run(client_->Create(kRootInode, "post-master-failover", FileType::kFile));
  EXPECT_TRUE(f.ok()) << f.status().ToString();
}

TEST_F(CfsCluster, MetaPartitionSplitsUnderLoad) {
  ClusterOptions opts;
  opts.master.meta_split_threshold = 200;  // split early
  opts.master.split_delta = 50;
  Boot(opts, 1, 4);  // single meta partition owning [1, inf)
  for (int i = 0; i < 150; i++) {
    ASSERT_TRUE(
        Run(client_->Create(kRootInode, "s" + std::to_string(i), FileType::kFile)).ok());
  }
  // 150 files -> 151 inodes + 150 dentries > 200 items: the admin loop cuts
  // the range (Algorithm 1) and creates a partition owning [end+1, inf).
  bool split = cluster_->RunUntil([&] {
    master::MasterNode* l = cluster_->master_leader();
    return l && l->splits_performed() > 0;
  });
  ASSERT_TRUE(split);
  master::MasterNode* leader = cluster_->master_leader();
  EXPECT_GE(leader->state().meta_partitions().size(), 2u);
  // Exactly one partition owns the unbounded tail.
  int unbounded = 0;
  for (const auto& [pid, rec] : leader->state().meta_partitions()) {
    if (rec.end == UINT64_MAX) unbounded++;
  }
  EXPECT_EQ(unbounded, 1);
  // New creates keep working and eventually land in the new range too.
  for (int i = 0; i < 80; i++) {
    auto r = Run(client_->Create(kRootInode, "post" + std::to_string(i), FileType::kFile));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST_F(CfsCluster, UtilizationPlacementPrefersEmptyNodes) {
  ClusterOptions opts;
  opts.num_nodes = 8;  // enough empty nodes to place 3 replicas off the hot ones
  Boot(opts);
  // Inflate reported memory utilization on nodes 0-2 via fake load.
  for (int i = 0; i < 3; i++) {
    cluster_->node_host(i)->AddMemory(200ull * kGiB);
  }
  cluster_->sched().RunFor(3 * kSec);  // heartbeats deliver utilizations
  master::MasterNode* leader = cluster_->master_leader();
  ASSERT_NE(leader, nullptr);
  auto picked = leader->PickReplicas(true, 3, 42);
  ASSERT_EQ(picked.size(), 3u);
  for (auto node : picked) {
    EXPECT_NE(node, cluster_->node_host(0)->id());
    EXPECT_NE(node, cluster_->node_host(1)->id());
    EXPECT_NE(node, cluster_->node_host(2)->id());
  }
}

}  // namespace
}  // namespace cfs::harness
