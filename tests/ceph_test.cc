// Tests for the Ceph baseline model: MDS metadata ops, directory-locality
// authority + rebalancing, bounded cache behaviour, OSD read/write paths.
#include <gtest/gtest.h>

#include "ceph/ceph.h"
#include "harness/cluster.h"  // for RunTask

namespace cfs::ceph {
namespace {

using harness::RunTask;
using sim::Task;

class CephFixture : public ::testing::Test {
 protected:
  CephFixture() : net_(&sched_) {
    CephOptions opts;
    opts.num_nodes = 5;
    cluster_ = std::make_unique<CephCluster>(&sched_, &net_, opts);
    sim::HostOptions ho;
    ho.num_disks = 1;
    client_host_ = net_.AddHost(ho);
    client_ = std::make_unique<CephClient>(cluster_.get(), client_host_);
  }

  template <typename T>
  T Run(sim::Task<T> t) {
    auto out = RunTask(sched_, std::move(t));
    EXPECT_TRUE(out.has_value()) << "hung";
    return std::move(*out);
  }

  sim::Scheduler sched_;
  sim::Network net_;
  std::unique_ptr<CephCluster> cluster_;
  sim::Host* client_host_;
  std::unique_ptr<CephClient> client_;
};

TEST_F(CephFixture, MkdirCreateLookup) {
  auto dir = Run(client_->Mkdir(kCephRoot, "d"));
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  auto file = Run(client_->Create(*dir, "f"));
  ASSERT_TRUE(file.ok());
  auto looked = Run(client_->Lookup(*dir, "f"));
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(looked->id, *file);
  EXPECT_FALSE(looked->is_dir);
}

TEST_F(CephFixture, DuplicateCreateFails) {
  ASSERT_TRUE(Run(client_->Create(kCephRoot, "x")).ok());
  EXPECT_TRUE(Run(client_->Create(kCephRoot, "x")).status().IsAlreadyExists());
}

TEST_F(CephFixture, ReaddirPlusIssuesPerInodeGets) {
  auto dir = Run(client_->Mkdir(kCephRoot, "dir"));
  ASSERT_TRUE(dir.ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Run(client_->Create(*dir, "f" + std::to_string(i))).ok());
  }
  uint64_t before = client_->meta_rpcs();
  auto listing = Run(client_->ReaddirPlus(*dir));
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 10u);
  // 1 readdir + 10 inodeGets (the §4.2 contrast with CFS's batchInodeGet).
  EXPECT_EQ(client_->meta_rpcs() - before, 11u);
}

TEST_F(CephFixture, RemoveAndRmdir) {
  auto dir = Run(client_->Mkdir(kCephRoot, "rd"));
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(Run(client_->Create(*dir, "f")).ok());
  EXPECT_EQ(Run(client_->Rmdir(kCephRoot, "rd")).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(Run(client_->Remove(*dir, "f")).ok());
  EXPECT_TRUE(Run(client_->Rmdir(kCephRoot, "rd")).ok());
  EXPECT_TRUE(Run(client_->Lookup(kCephRoot, "rd")).status().IsNotFound());
}

TEST_F(CephFixture, DirectoryLocalityRoutesToOneMds) {
  auto dir = Run(client_->Mkdir(kCephRoot, "hot"));
  ASSERT_TRUE(dir.ok());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(Run(client_->Create(*dir, "f" + std::to_string(i))).ok());
  }
  // All creates for this directory landed on its single authority MDS.
  int authority = cluster_->AuthorityOf(*dir);
  EXPECT_GE(cluster_->mds(authority)->ops(), 20u);
}

TEST_F(CephFixture, CacheMissesGrowBeyondCapacity) {
  // Shrink the cache and touch more inodes than fit.
  CephOptions opts;
  opts.num_nodes = 3;
  opts.mds_cache_capacity = 64;
  sim::Scheduler sched2;
  sim::Network net2(&sched2);
  CephCluster small(&sched2, &net2, opts);
  sim::HostOptions ho;
  ho.num_disks = 1;
  CephClient c(&small, net2.AddHost(ho));

  auto dir = RunTask(sched2, c.Mkdir(kCephRoot, "d"));
  ASSERT_TRUE(dir->ok());
  std::vector<InodeId> files;
  for (int i = 0; i < 300; i++) {
    auto f = RunTask(sched2, c.Create(**dir, "f" + std::to_string(i)));
    ASSERT_TRUE(f->ok());
    files.push_back(**f);
  }
  // Random-ish access over a working set 5x the cache: mostly misses.
  int authority = small.AuthorityOf(**dir);
  uint64_t misses_before = small.mds(authority)->cache_misses();
  for (int round = 0; round < 2; round++) {
    for (size_t i = 0; i < files.size(); i += 3) {
      ASSERT_TRUE(RunTask(sched2, c.InodeGet(files[i], **dir))->ok());
    }
  }
  EXPECT_GT(small.mds(authority)->cache_misses(), misses_before + 50);
}

TEST_F(CephFixture, RebalancingMovesHotDirectory) {
  CephOptions opts;
  opts.num_nodes = 4;
  opts.rebalance_interval = 500 * kMsec;
  opts.rebalance_imbalance_factor = 1.5;
  sim::Scheduler sched2;
  sim::Network net2(&sched2);
  CephCluster small(&sched2, &net2, opts);
  sim::HostOptions ho;
  ho.num_disks = 1;
  CephClient c(&small, net2.AddHost(ho));

  auto dir = RunTask(sched2, c.Mkdir(kCephRoot, "hot"));
  ASSERT_TRUE(dir->ok());
  int initial_authority = small.AuthorityOf(**dir);
  // Hammer the one directory; every other MDS is idle -> imbalance.
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(RunTask(sched2, c.Create(**dir, "f" + std::to_string(i)))->ok());
  }
  sched2.RunFor(3 * kSec);
  EXPECT_GT(small.rebalances(), 0u);
  // Stale-route requests still succeed (proxied), and the authority moved.
  int now_authority = small.AuthorityOf(**dir);
  EXPECT_NE(now_authority, initial_authority);
  EXPECT_TRUE(RunTask(sched2, c.Lookup(**dir, "f0"))->ok());
}

TEST_F(CephFixture, WriteStripesAcrossObjects) {
  auto f = Run(client_->Create(kCephRoot, "big"));
  ASSERT_TRUE(f.ok());
  // 10 MiB spans 3 x 4 MiB objects.
  ASSERT_TRUE(Run(client_->Write(*f, kCephRoot, 0, 10 * kMiB, false)).ok());
  uint64_t written = 0;
  for (int i = 0; i < cluster_->num_mds(); i++) {
    sim::Host* h = cluster_->mds_host(i);
    for (int d = 0; d < h->num_disks(); d++) written += h->disk(d)->write_bytes();
  }
  // 3 replicas x (journal + data) = 6x logical bytes, plus metadata.
  EXPECT_GE(written, 6 * 10 * kMiB);
}

TEST_F(CephFixture, OverwritePaysQueueWalkAndMetadataSync) {
  auto f = Run(client_->Create(kCephRoot, "ow"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Write(*f, kCephRoot, 0, 1 * kMiB, false)).ok());
  SimTime t0 = sched_.Now();
  ASSERT_TRUE(Run(client_->Write(*f, 0, 0, 4 * kKiB, true)).ok());
  SimTime overwrite_lat = sched_.Now() - t0;
  t0 = sched_.Now();
  ASSERT_TRUE(Run(client_->Read(*f, 0, 4 * kKiB)).ok());
  SimTime read_lat = sched_.Now() - t0;
  // Overwrites are substantially slower than reads of the same size.
  EXPECT_GT(overwrite_lat, read_lat * 2);
}

TEST_F(CephFixture, ReadComesFromPrimaryOnly) {
  auto f = Run(client_->Create(kCephRoot, "r"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Write(*f, kCephRoot, 0, 64 * kKiB, false)).ok());
  uint64_t reads_before = 0;
  for (int i = 0; i < cluster_->num_mds(); i++) {
    sim::Host* h = cluster_->mds_host(i);
    for (int d = 0; d < h->num_disks(); d++) reads_before += h->disk(d)->reads();
  }
  ASSERT_TRUE(Run(client_->Read(*f, 0, 64 * kKiB)).ok());
  uint64_t reads_after = 0;
  for (int i = 0; i < cluster_->num_mds(); i++) {
    sim::Host* h = cluster_->mds_host(i);
    for (int d = 0; d < h->num_disks(); d++) reads_after += h->disk(d)->reads();
  }
  EXPECT_EQ(reads_after - reads_before, 1u);  // one disk read, one replica
}

}  // namespace
}  // namespace cfs::ceph
