// QoS primitive tests (ROADMAP item 3): token-bucket determinism, weighted-
// fair admission ratios under saturation, per-tenant FIFO invariants, and the
// multi-mount client lifecycle end to end.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "harness/cluster.h"
#include "qos/qos.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace cfs {
namespace {

using qos::AdmissionQueue;
using qos::TenantId;
using qos::TokenBucket;

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucket, UnconfiguredNeverDelays) {
  TokenBucket b;
  EXPECT_FALSE(b.enabled());
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(b.Reserve(1 * kMiB, static_cast<SimTime>(i)), 0);
  }
}

TEST(TokenBucket, GcraRefillSchedule) {
  TokenBucket b;
  b.Configure(/*rate=*/1000, /*burst=*/10);  // 1 unit per msec, 10 credit
  // The burst tolerance covers the first charges; after that each unit must
  // wait exactly its 1 msec refill.
  std::vector<SimDuration> delays;
  for (int i = 0; i < 14; i++) delays.push_back(b.Reserve(1, /*now=*/0));
  for (int i = 0; i < 11; i++) EXPECT_EQ(delays[i], 0) << "charge " << i;
  EXPECT_EQ(delays[11], 1000);
  EXPECT_EQ(delays[12], 2000);
  EXPECT_EQ(delays[13], 3000);
}

TEST(TokenBucket, SteadyStateMatchesRate) {
  TokenBucket b;
  b.Configure(/*rate=*/500, /*burst=*/1);  // 2000 usec per unit
  SimTime now = 0;
  // A conforming caller sleeps each returned delay before the next charge:
  // once past the burst allowance (GCRA's tolerance admits one extra charge
  // on top of the first), grant times advance at exactly 1/rate.
  SimTime last_grant = 0;
  for (int i = 0; i < 50; i++) {
    SimDuration d = b.Reserve(1, now);
    SimTime grant = now + d;
    if (i > 1) EXPECT_EQ(grant - last_grant, 2000) << "charge " << i;
    last_grant = grant;
    now = grant;
  }
}

TEST(TokenBucket, SameSequenceSameDelays) {
  // Two buckets fed the identical (n, now) sequence must agree exactly —
  // the client throttle depends on this for same-seed byte-identical runs.
  TokenBucket a, b;
  a.Configure(10'000, 64);
  b.Configure(10'000, 64);
  uint64_t x = 12345;
  SimTime now = 0;
  for (int i = 0; i < 500; i++) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;  // LCG, no wall clock
    uint64_t n = 1 + (x >> 33) % 128;
    now += (x >> 17) % 300;
    EXPECT_EQ(a.Reserve(n, now), b.Reserve(n, now)) << "charge " << i;
  }
}

// --- AdmissionQueue --------------------------------------------------------

/// Closed-loop tenant load: grab a slot, hold it for `service`, repeat.
sim::Task<void> Hog(sim::Scheduler* sched, AdmissionQueue* q, TenantId t,
                    SimDuration service, const bool* stop) {
  while (!*stop) {
    auto guard = co_await q->Enter(t, /*cost=*/100);
    co_await sim::SleepFor{*sched, service};
  }
}

TEST(AdmissionQueue, DisabledAdmitsSynchronously) {
  sim::Scheduler sched(1);
  AdmissionQueue q(&sched);  // slots 0 = disabled
  bool done = false;
  sim::Spawn([](AdmissionQueue* q, bool* done) -> sim::Task<void> {
    auto g = co_await q->Enter(7, 100);
    *done = true;
  }(&q, &done));
  sched.RunFor(1);
  EXPECT_TRUE(done);
  EXPECT_EQ(q.queued(), 0u);
  EXPECT_EQ(q.in_service(), 0u);
  // Disabled queues keep no per-tenant state: nothing to export, no events.
  EXPECT_TRUE(q.tenant_stats().empty());
}

TEST(AdmissionQueue, WeightedShareUnderSaturation) {
  sim::Scheduler sched(1);
  AdmissionQueue q(&sched);
  q.Configure(/*slots=*/1);
  q.SetWeight(1, 4);
  q.SetWeight(2, 1);
  bool stop = false;
  // Three closed-loop workers per tenant keep the queue saturated; with one
  // slot, service counts must converge to the 4:1 weight ratio.
  for (int i = 0; i < 3; i++) {
    sim::Spawn(Hog(&sched, &q, 1, 1 * kMsec, &stop));
    sim::Spawn(Hog(&sched, &q, 2, 1 * kMsec, &stop));
  }
  sched.RunFor(2 * kSec);
  stop = true;
  sched.RunFor(1 * kSec);  // drain
  const auto& stats = q.tenant_stats();
  ASSERT_TRUE(stats.count(1) && stats.count(2));
  const double ratio = static_cast<double>(stats.at(1).admitted) /
                       static_cast<double>(stats.at(2).admitted);
  EXPECT_GT(ratio, 3.4) << "t1=" << stats.at(1).admitted << " t2=" << stats.at(2).admitted;
  EXPECT_LT(ratio, 4.6) << "t1=" << stats.at(1).admitted << " t2=" << stats.at(2).admitted;
  // Saturation bookkeeping: waiters actually queued and waited.
  EXPECT_GT(stats.at(2).queued, 0u);
  EXPECT_GT(stats.at(2).wait_usec, 0u);
}

/// Records its admission order, then releases immediately.
sim::Task<void> Waiter(AdmissionQueue* q, TenantId t, uint64_t cost, int idx,
                       std::vector<std::pair<TenantId, int>>* order) {
  auto g = co_await q->Enter(t, cost);
  order->push_back({t, idx});
}

TEST(AdmissionQueue, PerTenantFifoAndCrossTenantPriority) {
  sim::Scheduler sched(1);
  AdmissionQueue q(&sched);
  q.Configure(/*slots=*/1);
  q.SetWeight(9, 100);
  bool stop = false;
  // One blocker takes the slot so everything below enqueues behind it.
  sim::Spawn([](sim::Scheduler* sched, AdmissionQueue* q,
                const bool*) -> sim::Task<void> {
    auto g = co_await q->Enter(1, 1);
    co_await sim::SleepFor{*sched, 10 * kMsec};
  }(&sched, &q, &stop));

  std::vector<std::pair<TenantId, int>> order;
  // Tenant 7 (weight 1): a huge-cost request followed by two cheap ones. The
  // cheap ones must NOT overtake it — requests of one tenant never reorder.
  sim::Spawn(Waiter(&q, 7, 5000, 0, &order));
  sim::Spawn(Waiter(&q, 7, 1, 1, &order));
  sim::Spawn(Waiter(&q, 7, 1, 2, &order));
  // Tenant 9 (weight 100) arrives last but its finish tag is far smaller, so
  // it is dispatched before everything tenant 7 queued.
  sim::Spawn(Waiter(&q, 9, 5000, 0, &order));
  sched.RunFor(1 * kSec);

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], (std::pair<TenantId, int>{9, 0}));
  // Per-tenant FIFO for tenant 7 regardless of per-request cost.
  std::vector<int> t7;
  for (const auto& [t, idx] : order) {
    if (t == 7) t7.push_back(idx);
  }
  EXPECT_EQ(t7, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.queued(), 0u);
  EXPECT_EQ(q.in_service(), 0u);
}

// --- Multi-mount client lifecycle ------------------------------------------

TEST(MultiMount, LifecycleAndInvariants) {
  harness::ClusterOptions opts;
  opts.num_nodes = 5;
  harness::Cluster cluster(opts);
  auto st = harness::RunTask(cluster.sched(), cluster.Start());
  ASSERT_TRUE(st.has_value() && st->ok());

  master::VolumeQos qa;
  qa.weight = 8;
  master::VolumeQos qb;
  qb.iops_limit = 50;
  st = harness::RunTask(cluster.sched(), cluster.CreateVolume("alpha", 2, 4, qa));
  ASSERT_TRUE(st.has_value() && st->ok());
  st = harness::RunTask(cluster.sched(), cluster.CreateVolume("beta", 1, 2, qb));
  ASSERT_TRUE(st.has_value() && st->ok());

  auto mounted = harness::RunTask(
      cluster.sched(),
      cluster.MountClient(std::vector<std::string>{"alpha", "beta"}));
  ASSERT_TRUE(mounted.has_value() && mounted->ok());
  client::Client* c = **mounted;
  ASSERT_EQ(c->mounts().size(), 2u);
  client::MountContext* ma = c->mount("alpha");
  client::MountContext* mb = c->mount("beta");
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  EXPECT_EQ(c->default_mount(), ma);  // first volume becomes the default
  EXPECT_NE(ma->tenant(), 0u);
  EXPECT_NE(mb->tenant(), 0u);
  EXPECT_NE(ma->tenant(), mb->tenant());

  // Both mounts serve traffic independently.
  auto fa = harness::RunTask(cluster.sched(),
                             ma->Create(meta::kRootInode, "a.txt", meta::FileType::kFile));
  ASSERT_TRUE(fa.has_value() && fa->ok());
  auto fb = harness::RunTask(cluster.sched(),
                             mb->Create(meta::kRootInode, "b.txt", meta::FileType::kFile));
  ASSERT_TRUE(fb.has_value() && fb->ok());
  EXPECT_GT(ma->mount_stats().ops, 0u);
  EXPECT_TRUE(cluster.CheckInvariants().ok());

  // Unmount one volume: its context is retired (ops fail fast), the other
  // keeps working, and the refresh loop stops at its next wakeup.
  ASSERT_TRUE(c->Unmount("alpha").ok());
  auto dead = harness::RunTask(cluster.sched(),
                               ma->Create(meta::kRootInode, "a2", meta::FileType::kFile));
  ASSERT_TRUE(dead.has_value());
  EXPECT_FALSE(dead->ok());
  auto alive = harness::RunTask(cluster.sched(),
                                mb->Create(meta::kRootInode, "b2", meta::FileType::kFile));
  ASSERT_TRUE(alive.has_value() && alive->ok());
  cluster.sched().RunFor(5 * kSec);  // refresh loops wind down without incident
  EXPECT_TRUE(cluster.CheckInvariants().ok());

  // Remount: a fresh context under the same name serves traffic again; the
  // retired pointer stays valid (detached-coroutine safety) but keeps failing.
  auto re = harness::RunTask(cluster.sched(), c->Mount("alpha"));
  ASSERT_TRUE(re.has_value() && re->ok());
  client::MountContext* ma2 = c->mount("alpha");
  ASSERT_NE(ma2, nullptr);
  auto fresh = harness::RunTask(cluster.sched(),
                                ma2->Create(meta::kRootInode, "a3", meta::FileType::kFile));
  ASSERT_TRUE(fresh.has_value() && fresh->ok());
  auto still_dead = harness::RunTask(cluster.sched(),
                                     ma->Create(meta::kRootInode, "a4", meta::FileType::kFile));
  ASSERT_TRUE(still_dead.has_value());
  EXPECT_FALSE(still_dead->ok());

  // Full teardown through the harness: every mount retires.
  cluster.UnmountClient(c);
  auto gone = harness::RunTask(cluster.sched(),
                               mb->Create(meta::kRootInode, "b3", meta::FileType::kFile));
  ASSERT_TRUE(gone.has_value());
  EXPECT_FALSE(gone->ok());
  cluster.sched().RunFor(5 * kSec);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

}  // namespace
}  // namespace cfs
