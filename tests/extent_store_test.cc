// Extent store tests: large-file extents, small-file aggregation, punch
// holes, CRC integrity, overwrite semantics, accounting mode.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "storage/extent_store.h"

namespace cfs::storage {
namespace {

using sim::Spawn;
using sim::Task;

class ExtentFixture : public ::testing::Test {
 protected:
  ExtentFixture() : net_(&sched_) {
    host_ = net_.AddHost();
    ExtentStoreOptions opts;
    opts.extent_size_limit = 1 * kMiB;
    opts.small_file_threshold = 128 * kKiB;
    store_ = std::make_unique<ExtentStore>(host_->disk(0), opts);
  }

  template <typename F>
  void Run(F f) {
    Spawn(f());
    sched_.Run();
  }

  sim::Scheduler sched_;
  sim::Network net_;
  sim::Host* host_;
  std::unique_ptr<ExtentStore> store_;
};

TEST_F(ExtentFixture, AppendAndReadBack) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    EXPECT_TRUE((co_await store_->Append(id, 0, "hello ")).ok());
    EXPECT_TRUE((co_await store_->Append(id, 6, "world")).ok());
    auto r = co_await store_->Read(id, 0, 11);
    EXPECT_TRUE(r.ok());
    if (r.ok()) EXPECT_EQ(*r, "hello world");
    EXPECT_EQ(store_->ExtentSize(id), 11u);
  });
}

TEST_F(ExtentFixture, AppendMustBeAtEnd) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    (void)co_await store_->Append(id, 0, "abc");
    Status st = co_await store_->Append(id, 1, "x");
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    st = co_await store_->Append(id, 10, "x");
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });
}

TEST_F(ExtentFixture, ExtentSizeLimitEnforced) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    std::string big(512 * kKiB, 'a');
    EXPECT_TRUE((co_await store_->Append(id, 0, big)).ok());
    EXPECT_TRUE((co_await store_->Append(id, big.size(), big)).ok());
    Status st = co_await store_->Append(id, 2 * big.size(), "x");
    EXPECT_TRUE(st.IsNoSpace());
  });
}

TEST_F(ExtentFixture, OverwriteInPlace) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    (void)co_await store_->Append(id, 0, "aaaaaaaaaa");
    EXPECT_TRUE((co_await store_->Overwrite(id, 3, "XYZ")).ok());
    auto r = co_await store_->Read(id, 0, 10);
    EXPECT_TRUE(r.ok());
    if (r.ok()) EXPECT_EQ(*r, "aaaXYZaaaa");
    // Size unchanged: overwrite never extends (§2.7.2, offsets fixed).
    EXPECT_EQ(store_->ExtentSize(id), 10u);
  });
}

TEST_F(ExtentFixture, OverwriteBeyondEndRejected) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    (void)co_await store_->Append(id, 0, "abc");
    Status st = co_await store_->Overwrite(id, 2, "toolong");
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });
}

TEST_F(ExtentFixture, CrcCaughtAfterOverwrite) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    (void)co_await store_->Append(id, 0, "0123456789");
    (void)co_await store_->Overwrite(id, 0, "9876543210");
    // Whole-extent read verifies the recomputed CRC.
    auto r = co_await store_->Read(id, 0, 10);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE((co_await store_->VerifyExtent(id)).ok());
  });
}

TEST_F(ExtentFixture, SmallFilesAggregateIntoOneExtent) {
  Run([&]() -> Task<void> {
    std::string f1(4 * kKiB, 'a'), f2(8 * kKiB, 'b'), f3(100, 'c');
    auto r1 = co_await store_->WriteSmall(f1);
    auto r2 = co_await store_->WriteSmall(f2);
    auto r3 = co_await store_->WriteSmall(f3);
    EXPECT_TRUE(r1.ok());
    EXPECT_TRUE(r2.ok());
    EXPECT_TRUE(r3.ok());
    if (!(r1.ok() && r2.ok() && r3.ok())) co_return;
    // All in the same tiny extent, at consecutive physical offsets.
    EXPECT_EQ(r1->first, r2->first);
    EXPECT_EQ(r2->first, r3->first);
    EXPECT_EQ(r1->second, 0u);
    EXPECT_EQ(r2->second, f1.size());
    EXPECT_EQ(r3->second, f1.size() + f2.size());
    // Contents readable at the recorded offsets.
    auto read = co_await store_->Read(r2->first, r2->second, f2.size());
    EXPECT_TRUE(read.ok());
    if (read.ok()) EXPECT_EQ(*read, f2);
  });
}

TEST_F(ExtentFixture, TooLargeForSmallPathRejected) {
  Run([&]() -> Task<void> {
    std::string big(256 * kKiB, 'x');
    auto r = co_await store_->WriteSmall(big);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  });
}

TEST_F(ExtentFixture, PunchHoleFreesSpaceAndBlocksReads) {
  Run([&]() -> Task<void> {
    std::string f1(16 * kKiB, 'a'), f2(16 * kKiB, 'b');
    auto r1 = co_await store_->WriteSmall(f1);
    auto r2 = co_await store_->WriteSmall(f2);
    uint64_t before = store_->physical_bytes();
    EXPECT_TRUE((co_await store_->PunchHole(r1->first, r1->second, f1.size())).ok());
    EXPECT_EQ(store_->physical_bytes(), before - f1.size());
    // Reading the punched file fails; the neighbour is intact.
    auto bad = co_await store_->Read(r1->first, r1->second, f1.size());
    EXPECT_FALSE(bad.ok());
    auto good = co_await store_->Read(r2->first, r2->second, f2.size());
    EXPECT_TRUE(good.ok());
    if (good.ok()) EXPECT_EQ(*good, f2);
  });
}

TEST_F(ExtentFixture, DoublePunchRejected) {
  Run([&]() -> Task<void> {
    auto r = co_await store_->WriteSmall(std::string(1024, 'x'));
    EXPECT_TRUE((co_await store_->PunchHole(r->first, r->second, 1024)).ok());
    // A second punch of the same (now gone or punched) range fails cleanly.
    Status st = co_await store_->PunchHole(r->first, r->second, 1024);
    EXPECT_FALSE(st.ok());
  });
}

TEST_F(ExtentFixture, FullyPunchedTinyExtentIsRemoved) {
  Run([&]() -> Task<void> {
    auto r1 = co_await store_->WriteSmall(std::string(512, 'a'));
    auto r2 = co_await store_->WriteSmall(std::string(512, 'b'));
    size_t extents_before = store_->num_extents();
    (void)co_await store_->PunchHole(r1->first, r1->second, 512);
    EXPECT_EQ(store_->num_extents(), extents_before);  // half punched: stays
    (void)co_await store_->PunchHole(r2->first, r2->second, 512);
    EXPECT_EQ(store_->num_extents(), extents_before - 1);  // all punched: gone
  });
}

TEST_F(ExtentFixture, DeleteLargeExtentDirectly) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    (void)co_await store_->Append(id, 0, std::string(64 * kKiB, 'z'));
    uint64_t before = store_->physical_bytes();
    EXPECT_TRUE((co_await store_->DeleteExtent(id)).ok());
    EXPECT_EQ(store_->physical_bytes(), before - 64 * kKiB);
    EXPECT_FALSE(store_->Has(id));
  });
}

TEST_F(ExtentFixture, DeleteTinyExtentRejected) {
  Run([&]() -> Task<void> {
    auto r = co_await store_->WriteSmall("tiny");
    Status st = co_await store_->DeleteExtent(r->first);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });
}

TEST_F(ExtentFixture, NewTinyExtentWhenActiveFills) {
  Run([&]() -> Task<void> {
    // 1 MiB limit; 128 KiB files fill one tiny extent after 8 writes.
    std::string f(128 * kKiB, 'q');
    ExtentId first = 0;
    for (int i = 0; i < 9; i++) {
      auto r = co_await store_->WriteSmall(f);
      EXPECT_TRUE(r.ok());
      if (i == 0) first = r->first;
      if (i == 8) EXPECT_NE(r->first, first);  // rolled over to a new extent
    }
  });
}

TEST_F(ExtentFixture, AccountingModeTracksSizesWithoutContents) {
  ExtentStoreOptions opts;
  opts.track_contents = false;
  ExtentStore store(host_->disk(1), opts);
  Run([&]() -> Task<void> {
    ExtentId id = store.CreateExtent();
    (void)co_await store.Append(id, 0, std::string(1 * kMiB, 'a'));
    EXPECT_EQ(store.ExtentSize(id), 1 * kMiB);
    EXPECT_EQ(store.Find(id)->data.size(), 0u);  // no bytes materialized
    auto r = co_await store.Read(id, 0, 1024);
    EXPECT_TRUE(r.ok());
    if (r.ok()) EXPECT_EQ(r->size(), 1024u);
  });
  EXPECT_EQ(store.logical_bytes(), 1 * kMiB);
}

TEST_F(ExtentFixture, RebuildCrcCacheAfterRestart) {
  Run([&]() -> Task<void> {
    ExtentId id = store_->CreateExtent();
    (void)co_await store_->Append(id, 0, "data-to-check");
    EXPECT_TRUE((co_await store_->RebuildCrcCache()).ok());
    EXPECT_TRUE((co_await store_->VerifyExtent(id)).ok());
  });
}

}  // namespace
}  // namespace cfs::storage
