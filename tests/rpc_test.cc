// RPC service-layer tests (src/rpc/): seeded-jitter backoff determinism,
// deadline propagation through the nested meta->data write workflow, and
// leader-aware routing (crash -> exactly one cache invalidation, then the
// repointed cache serves subsequent calls).
#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.h"
#include "rpc/retry_policy.h"

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;

// --- Backoff ----------------------------------------------------------------

std::vector<SimDuration> DelayTrace(uint64_t seed) {
  sim::Scheduler sched(seed);
  rpc::RetryPolicy policy = rpc::RetryPolicy::Control();
  std::vector<SimDuration> delays;
  for (int call = 0; call < 8; call++) {
    rpc::Backoff backoff(&sched, policy);
    while (backoff.NextAttempt()) delays.push_back(backoff.NextDelay());
  }
  return delays;
}

TEST(Backoff, JitterIsSeedDeterministic) {
  EXPECT_EQ(DelayTrace(42), DelayTrace(42));
  EXPECT_NE(DelayTrace(42), DelayTrace(43));
}

TEST(Backoff, DelaysFollowEqualJitterSchedule) {
  sim::Scheduler sched(7);
  rpc::RetryPolicy policy = rpc::RetryPolicy::Data();
  rpc::Backoff backoff(&sched, policy);
  SimDuration nominal = policy.backoff_base;
  while (backoff.NextAttempt()) {
    SimDuration d = backoff.NextDelay();
    EXPECT_GE(d, nominal / 2) << "attempt " << backoff.attempt();
    EXPECT_LE(d, nominal) << "attempt " << backoff.attempt();
    nominal = std::min(nominal * 2, policy.backoff_cap);
  }
  EXPECT_TRUE(backoff.exhausted());
}

TEST(Backoff, AttemptBudgetMatchesPolicy) {
  sim::Scheduler sched(7);
  rpc::RetryPolicy policy;
  policy.max_attempts = 3;
  rpc::Backoff backoff(&sched, policy);
  int granted = 0;
  while (backoff.NextAttempt()) granted++;
  EXPECT_EQ(granted, 3);
  EXPECT_FALSE(backoff.NextAttempt());
}

// --- Full-stack retries stay on the determinism auditor's contract ----------

TEST(RpcDeterminism, RetriesWithJitterReplayIdentically) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = 29;
  opts.client.rpc_timeout = 300 * kMsec;
  auto scenario = [](Cluster& cluster) {
    auto st = RunTask(cluster.sched(), cluster.Start());
    ASSERT_TRUE(st && st->ok());
    st = RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8));
    ASSERT_TRUE(st && st->ok());
    auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
    ASSERT_TRUE(c && c->ok());
    Client* client = **c;
    // 5% loss makes the retry/backoff machinery fire; the seeded jitter must
    // fold into the same trace hash on both runs.
    cluster.net().SetDropProbability(0.05);
    for (int i = 0; i < 12; i++) {
      auto f = RunTask(cluster.sched(),
                       client->Create(kRootInode, "f" + std::to_string(i),
                                      FileType::kFile));
      if (!f || !f->ok()) continue;
      if (!RunTask(cluster.sched(), client->Open((*f)->id))->ok()) continue;
      (void)RunTask(cluster.sched(),
                    client->Write((*f)->id, 0, std::string(32 * kKiB, 'j')));
    }
    cluster.sched().RunFor(2 * kSec);
  };
  auto [first, second] = AuditDeterminism(opts, scenario);
  EXPECT_EQ(first, second);
}

// --- Deadline propagation ----------------------------------------------------

TEST(Deadline, BoundsNestedWriteWorkflowUnderTotalLoss) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = 31;
  opts.client.rpc_timeout = 300 * kMsec;
  opts.client.op_deadline = 600 * kMsec;
  Cluster cluster(opts);
  ASSERT_TRUE(RunTask(cluster.sched(), cluster.Start())->ok());
  ASSERT_TRUE(RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8))->ok());
  auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
  ASSERT_TRUE(c->ok());
  Client* client = **c;

  auto f = RunTask(cluster.sched(),
                   client->Create(kRootInode, "bounded", FileType::kFile));
  ASSERT_TRUE(f->ok());
  ASSERT_TRUE(RunTask(cluster.sched(), client->Open((*f)->id))->ok());

  // Total loss: without a propagated deadline the write would burn the full
  // attempt budget of every nested stage (extent alloc, chain send, meta
  // size update), far past the operation deadline.
  cluster.net().SetDropProbability(1.0);
  SimTime start = cluster.sched().Now();
  auto st = RunTask(cluster.sched(),
                    client->Write((*f)->id, 0, std::string(64 * kKiB, 'd')));
  ASSERT_TRUE(st.has_value()) << "write hung";
  EXPECT_FALSE(st->ok());
  SimDuration elapsed = cluster.sched().Now() - start;
  // The deadline may overshoot by at most one in-flight leg or backoff
  // sleep per nesting level, never by a full per-stage retry budget.
  EXPECT_LE(elapsed, 2500 * kMsec) << "deadline did not propagate";
  // Every failed leg was metered by the channel.
  EXPECT_GE(client->rpc_metrics().TotalCount(rpc::Outcome::kTimeout), 2u);

  // A metadata op under the same loss terminates inside the retrying stub,
  // which records the deadline-exceeded call outcome.
  start = cluster.sched().Now();
  auto cr = RunTask(cluster.sched(),
                    client->Create(kRootInode, "late", FileType::kFile));
  ASSERT_TRUE(cr.has_value()) << "create hung";
  EXPECT_FALSE(cr->ok());
  EXPECT_LE(cluster.sched().Now() - start, 2500 * kMsec);
  EXPECT_GE(client->rpc_metrics().TotalCount(rpc::Outcome::kDeadlineExceeded),
            1u);
  cluster.net().SetDropProbability(0);
}

// --- Leader-aware routing ----------------------------------------------------

TEST(Router, MetaLeaderCrashInvalidatesCacheOnceThenRedirects) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = 37;
  opts.client.rpc_timeout = 300 * kMsec;
  // Every GetInode must issue a real RPC leg; the client's metadata cache
  // would otherwise satisfy repeat root lookups locally.
  opts.client.enable_metadata_cache = false;
  Cluster cluster(opts);
  ASSERT_TRUE(RunTask(cluster.sched(), cluster.Start())->ok());
  ASSERT_TRUE(RunTask(cluster.sched(), cluster.CreateVolume("v", 3, 8))->ok());
  auto c = RunTask(cluster.sched(), cluster.MountClient("v"));
  ASSERT_TRUE(c->ok());
  Client* client = **c;

  // Warm the root partition's leader cache with one successful call.
  ASSERT_TRUE(RunTask(cluster.sched(), client->GetInode(kRootInode))->ok());

  // Find the meta partition owning the root inode and the node running its
  // raft leader.
  master::MasterNode* ml = cluster.master_leader();
  ASSERT_NE(ml, nullptr);
  meta::PartitionId root_pid = 0;
  for (const auto& [pid, rec] : ml->state().meta_partitions()) {
    if (rec.start <= kRootInode && kRootInode < rec.end) {
      root_pid = pid;
      break;
    }
  }
  ASSERT_NE(root_pid, 0u);
  int leader_node = -1;
  for (int i = 0; i < cluster.num_nodes(); i++) {
    raft::RaftNode* rn = cluster.meta_node(i)->GetRaft(root_pid);
    if (rn && rn->IsLeader()) {
      leader_node = i;
      break;
    }
  }
  ASSERT_GE(leader_node, 0);

  cluster.CrashNode(leader_node);

  // Let the partition re-elect and propagate the new leader's heartbeats, so
  // follower NotLeader hints are fresh. (Probing mid-election can follow a
  // stale hint back to the dead node and legitimately invalidate twice; the
  // scenario pinned here is the steady-state §2.4 one.)
  ASSERT_TRUE(cluster.RunUntil([&] {
    for (int i = 0; i < cluster.num_nodes(); i++) {
      if (i == leader_node) continue;
      raft::RaftNode* rn = cluster.meta_node(i)->GetRaft(root_pid);
      if (rn && rn->IsLeader()) return true;
    }
    return false;
  }));
  cluster.sched().RunFor(500 * kMsec);

  const rpc::RouterStats before = client->router_stats();

  // The next call's first leg hits the dead cached leader: exactly one cache
  // invalidation, then one probe lands on a live replica which either IS the
  // new leader or redirects to it.
  auto g = RunTask(cluster.sched(), client->GetInode(kRootInode), 200'000'000);
  ASSERT_TRUE(g.has_value() && g->ok()) << "op did not survive leader crash";
  const rpc::RouterStats after = client->router_stats();
  EXPECT_EQ(after.invalidations, before.invalidations + 1);
  EXPECT_GE(after.leader_probes, before.leader_probes + 1);

  // The repointed cache serves the follow-up call with no extra probing.
  ASSERT_TRUE(RunTask(cluster.sched(), client->GetInode(kRootInode))->ok());
  const rpc::RouterStats again = client->router_stats();
  EXPECT_EQ(again.invalidations, after.invalidations);
  EXPECT_EQ(again.leader_cache_hits, after.leader_cache_hits + 1);
  EXPECT_EQ(again.leader_probes, after.leader_probes);
}

}  // namespace
}  // namespace cfs::harness
