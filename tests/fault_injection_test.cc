// Fault-injection tests: the full CFS stack under message loss, repeated
// node crashes, and mid-write failures. Verifies the paper's failure
// semantics: clients retry until success (§2.1.3), sequential writes resend
// uncommitted suffixes to new extents (§2.2.5), recovery is two-phase, and
// no acknowledged data is ever lost or corrupted.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "vfs/vfs.h"

namespace cfs::harness {
namespace {

using client::Client;
using meta::FileType;
using meta::kRootInode;
using sim::Task;

class FaultFixture : public ::testing::Test {
 protected:
  void Boot(uint64_t seed = 77) {
    ClusterOptions opts;
    opts.num_nodes = 5;
    opts.seed = seed;
    opts.client.rpc_timeout = 300 * kMsec;  // snappier retries under loss
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->Start())->ok());
    ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->CreateVolume("v", 3, 8))->ok());
    auto c = RunTask(cluster_->sched(), cluster_->MountClient("v"));
    ASSERT_TRUE(c->ok());
    client_ = **c;
  }

  template <typename T>
  T Run(sim::Task<T> t) {
    auto out = RunTask(cluster_->sched(), std::move(t), 200'000'000);
    EXPECT_TRUE(out.has_value()) << "task hung";
    return std::move(*out);
  }

  /// Deep-check every cluster invariant (common/check.h). Runs from
  /// TearDown so every fault scenario — loss, crashes, mid-write failures —
  /// ends with a full sweep; call mid-test after recovery checkpoints too.
  void ExpectInvariantsHold(const char* when) {
    if (!cluster_) return;
    InvariantReport report = cluster_->CheckInvariants();
    EXPECT_TRUE(report.ok()) << "invariant violations " << when << ":\n"
                             << report.ToString();
  }

  void TearDown() override { ExpectInvariantsHold("at test end"); }

  std::unique_ptr<Cluster> cluster_;
  Client* client_ = nullptr;
};

TEST_F(FaultFixture, MetadataOpsSurviveFivePercentMessageLoss) {
  Boot();
  cluster_->net().SetDropProbability(0.05);
  int created = 0;
  for (int i = 0; i < 30; i++) {
    auto r = Run(client_->Create(kRootInode, "lossy" + std::to_string(i), FileType::kFile));
    // Client retries hide most drops; whatever failed must not corrupt state.
    if (r.ok()) created++;
  }
  cluster_->net().SetDropProbability(0);
  cluster_->sched().RunFor(2 * kSec);
  auto listed = Run(client_->ReadDir(kRootInode));
  ASSERT_TRUE(listed.ok());
  // Everything the client saw acknowledged is durably visible.
  EXPECT_GE(static_cast<int>(listed->size()), created);
  EXPECT_GE(created, 20);  // retries should have carried most ops through
}

TEST_F(FaultFixture, WritesUnderMessageLossReadBackIntact) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "lossy.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  cluster_->net().SetDropProbability(0.02);
  std::string content(512 * kKiB, '\0');
  for (size_t i = 0; i < content.size(); i++) content[i] = static_cast<char>(i % 251);
  Status st = Run(client_->Write(f->id, 0, content));
  cluster_->net().SetDropProbability(0);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  auto read = Run(client_->Read(f->id, 0, content.size()));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, content);
}

TEST_F(FaultFixture, ChainLeaderCrashMidStreamResendsToNewExtent) {
  Boot();
  auto f = Run(client_->Create(kRootInode, "midstream.bin", FileType::kFile));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Run(client_->Open(f->id)).ok());
  std::string first(256 * kKiB, 'A');
  ASSERT_TRUE(Run(client_->Write(f->id, 0, first)).ok());

  // Crash every chain leader's node candidate: find the partition that holds
  // the file's active extent and kill its first replica.
  master::MasterNode* leader = cluster_->master_leader();
  ASSERT_NE(leader, nullptr);
  sim::NodeId victim_id = 0;
  for (const auto& [pid, rec] : leader->state().data_partitions()) {
    victim_id = rec.replicas[0];
    break;
  }
  int victim = -1;
  for (int i = 0; i < cluster_->num_nodes(); i++) {
    if (cluster_->node_host(i)->id() == victim_id) victim = i;
  }
  ASSERT_GE(victim, 0);
  cluster_->CrashNode(victim);

  // Keep appending: packets to dead chain leaders fail; the client resends
  // the suffix to fresh extents on other partitions (§2.2.5).
  std::string second(256 * kKiB, 'B');
  Status st = Run(client_->Write(f->id, first.size(), second));
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(Run(client_->Close(f->id)).ok());

  cluster_->sched().RunFor(2 * kSec);
  auto read = Run(client_->Read(f->id, 0, first.size() + second.size()));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), first.size() + second.size());
  EXPECT_EQ(*read, first + second);
}

TEST_F(FaultFixture, WindowedAppendSurvivesChainReplicaCrash) {
  // Kill a chain *backup* while a windowed append has packets in flight, for
  // every interesting window depth. The committed-prefix rule must leave no
  // holes, duplicates, or torn suffix: the read-back equals the written bytes
  // exactly, and the client resent the uncommitted suffix at least once.
  for (int w : {1, 4, 8}) {
    SCOPED_TRACE("window=" + std::to_string(w));
    ClusterOptions opts;
    opts.num_nodes = 5;
    opts.seed = 77 + w;
    opts.client.rpc_timeout = 300 * kMsec;
    opts.client.write_window_packets = w;
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->Start())->ok());
    ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->CreateVolume("v", 3, 8))->ok());
    auto c = RunTask(cluster_->sched(), cluster_->MountClient("v"));
    ASSERT_TRUE(c->ok());
    client_ = **c;

    auto f = Run(client_->Create(kRootInode, "windowed.bin", FileType::kFile));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(Run(client_->Open(f->id)).ok());

    std::string content(4 * kMiB, '\0');
    for (size_t i = 0; i < content.size(); i++) {
      content[i] = static_cast<char>((i * 31 + w) % 251);
    }
    // Establish the append stream so the crash targets the active partition.
    std::string head = content.substr(0, 256 * kKiB);
    ASSERT_TRUE(Run(client_->Write(f->id, 0, head)).ok());

    // 5 ms into the big write: crash a backup replica of the extent's chain.
    bool crashed = false;
    meta::InodeId ino = f->id;
    cluster_->sched().After(5 * kMsec, [this, ino, &crashed] {
      client::PartitionId pid = client_->append_partition(ino);
      if (pid == 0) return;
      auto replicas = cluster_->DataPartitionReplicas(pid);
      if (replicas.size() < 2) return;
      for (int i = 0; i < cluster_->num_nodes(); i++) {
        if (cluster_->node_host(i)->id() == replicas[1]) {
          cluster_->CrashNode(i);
          crashed = true;
          return;
        }
      }
    });
    Status st = Run(client_->Write(f->id, head.size(), content.substr(head.size())));
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(crashed);
    ASSERT_TRUE(Run(client_->Close(f->id)).ok());

    cluster_->sched().RunFor(2 * kSec);
    auto read = Run(client_->Read(f->id, 0, content.size()));
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ(read->size(), content.size());
    EXPECT_EQ(*read, content);
    EXPECT_GE(client_->stats().resends, 1u);
    EXPECT_GT(client_->stats().suffix_resend_bytes, 0u);
    if (w > 1) {
      EXPECT_GT(client_->stats().max_inflight_packets, 1u);
    } else {
      EXPECT_EQ(client_->stats().max_inflight_packets, 1u);
    }
  }
}

TEST_F(FaultFixture, RollingCrashesOfAllStorageNodes) {
  Boot();
  // Build some state.
  std::string content(128 * kKiB, 'R');
  for (int i = 0; i < 6; i++) {
    auto f = Run(client_->Create(kRootInode, "roll" + std::to_string(i), FileType::kFile));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(Run(client_->Open(f->id)).ok());
    ASSERT_TRUE(Run(client_->Write(f->id, 0, content)).ok());
    ASSERT_TRUE(Run(client_->Close(f->id)).ok());
  }
  // Roll through every storage node: crash, wait, recover, verify.
  for (int i = 0; i < cluster_->num_nodes(); i++) {
    cluster_->CrashNode(i);
    cluster_->sched().RunFor(2 * kSec);
    ASSERT_TRUE(RunTaskVoid(cluster_->sched(), cluster_->RestartNode(i)));
    cluster_->sched().RunFor(2 * kSec);
    ExpectInvariantsHold("after rolling recovery");
  }
  // All data still present and intact; metadata still serves.
  auto listed = Run(client_->ReadDir(kRootInode));
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 6u);
  for (int i = 0; i < 6; i++) {
    auto d = Run(client_->Lookup(kRootInode, "roll" + std::to_string(i)));
    ASSERT_TRUE(d.ok());
    auto read = Run(client_->Read(d->inode, 0, content.size()));
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(*read, content) << "roll" << i;
  }
}

TEST_F(FaultFixture, MetaPartitionRecoversFromSnapshotAfterChurn) {
  ClusterOptions opts;
  opts.num_nodes = 5;
  opts.raft.compaction_threshold = 64;  // force snapshots quickly
  cluster_ = std::make_unique<Cluster>(opts);
  ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->Start())->ok());
  ASSERT_TRUE(RunTask(cluster_->sched(), cluster_->CreateVolume("v", 2, 6))->ok());
  auto c = RunTask(cluster_->sched(), cluster_->MountClient("v"));
  ASSERT_TRUE(c->ok());
  client_ = **c;

  for (int i = 0; i < 120; i++) {
    ASSERT_TRUE(Run(client_->Create(kRootInode, "c" + std::to_string(i), FileType::kFile)).ok());
  }
  cluster_->sched().RunFor(2 * kSec);  // let compaction run

  // Restart every node; meta partitions must restore from snapshot + log.
  for (int i = 0; i < cluster_->num_nodes(); i++) {
    cluster_->CrashNode(i);
    cluster_->sched().RunFor(1 * kSec);
    ASSERT_TRUE(RunTaskVoid(cluster_->sched(), cluster_->RestartNode(i)));
    cluster_->sched().RunFor(2 * kSec);
  }
  auto listed = Run(client_->ReadDir(kRootInode));
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  EXPECT_EQ(listed->size(), 120u);
}

TEST_F(FaultFixture, OrphanInodesFromInjectedCreateFailuresAreEvictable) {
  Boot();
  // Force dentry-create failures by racing duplicate names from two clients.
  auto c2r = RunTask(cluster_->sched(), cluster_->MountClient("v"));
  ASSERT_TRUE(c2r->ok());
  Client* c2 = **c2r;
  int conflicts = 0;
  for (int i = 0; i < 10; i++) {
    std::string name = "race" + std::to_string(i);
    ASSERT_TRUE(Run(client_->Create(kRootInode, name, FileType::kFile)).ok());
    auto dup = Run(c2->Create(kRootInode, name, FileType::kFile));
    if (!dup.ok()) conflicts++;
  }
  EXPECT_EQ(conflicts, 10);
  EXPECT_EQ(c2->orphan_count(), 10u);  // Fig. 3a failure path
  Run([](Client* c) -> Task<bool> {
    co_await c->EvictOrphans();
    co_return true;
  }(c2));
  EXPECT_EQ(c2->orphan_count(), 0u);
  // Global fsck: union referenced inodes across ALL partitions (a file's
  // inode and dentry may live on different partitions, §2.6), then check
  // every live file inode is referenced.
  cluster_->sched().RunFor(2 * kSec);
  std::set<meta::InodeId> referenced;
  std::set<meta::InodeId> live;
  std::set<meta::PartitionId> seen;  // each partition has 3 replicas; count once
  for (int i = 0; i < cluster_->num_nodes(); i++) {
    for (const auto& rep : cluster_->meta_node(i)->Reports()) {
      if (!seen.insert(rep.pid).second) continue;
      meta::MetaPartition* mp = cluster_->meta_node(i)->GetPartition(rep.pid);
      ASSERT_NE(mp, nullptr);
      for (auto ino : mp->ReferencedInodes()) referenced.insert(ino);
      for (auto ino : mp->LiveFileInodes()) live.insert(ino);
    }
  }
  for (auto ino : live) {
    EXPECT_TRUE(referenced.count(ino)) << "orphan inode " << ino << " survived fsck";
  }
}

}  // namespace
}  // namespace cfs::harness
