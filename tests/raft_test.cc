// Raft/MultiRaft tests: election, replication, commit semantics, leader
// failover, log conflict resolution, snapshots/compaction, crash recovery,
// partitions, and heartbeat coalescing.
#include <gtest/gtest.h>

#include <numeric>

#include "raft/multiraft.h"
#include "raft/raft_node.h"
#include "sim/network.h"

namespace cfs::raft {
namespace {

using sim::NodeId;
using sim::Spawn;
using sim::Task;

/// Test state machine: an append-only list of applied commands.
class ListSm : public StateMachine {
 public:
  void Apply(Index index, std::string_view data) override {
    applied.emplace_back(index, std::string(data));
  }
  std::string TakeSnapshot() override {
    Encoder enc;
    enc.PutU64(applied.size());
    for (auto& [i, d] : applied) {
      enc.PutU64(i);
      enc.PutString(d);
    }
    return enc.Take();
  }
  void Restore(std::string_view snap) override {
    applied.clear();
    Decoder dec(snap);
    uint64_t n = 0;
    (void)dec.GetU64(&n);
    for (uint64_t k = 0; k < n; k++) {
      uint64_t i;
      std::string d;
      (void)dec.GetU64(&i);
      (void)dec.GetString(&d);
      applied.emplace_back(i, std::move(d));
    }
  }
  std::vector<std::pair<Index, std::string>> applied;
};

class RaftCluster : public ::testing::Test {
 protected:
  static constexpr int kN = 3;

  void SetUp() override { Build(kN, {}); }

  void Build(int n, RaftOptions opts) {
    sched_ = std::make_unique<sim::Scheduler>(seed_);
    net_ = std::make_unique<sim::Network>(sched_.get());
    hosts_.clear();
    rafts_.clear();
    sms_.clear();
    nodes_.clear();
    std::vector<NodeId> peers;
    for (int i = 0; i < n; i++) {
      hosts_.push_back(net_->AddHost());
      peers.push_back(hosts_.back()->id());
    }
    for (int i = 0; i < n; i++) {
      rafts_.push_back(std::make_unique<RaftHost>(net_.get(), hosts_[i], opts));
      sms_.push_back(std::make_unique<ListSm>());
      RaftNode* node =
          rafts_[i]->CreateGroup(1, peers, sms_[i].get(), hosts_[i]->disk(0));
      node->Start();
      nodes_.push_back(node);
    }
  }

  /// Run until some node is leader; returns its array position.
  int AwaitLeader(GroupId gid = 1) {
    for (int round = 0; round < 600; round++) {
      sched_->RunFor(10 * kMsec);
      for (size_t i = 0; i < nodes_.size(); i++) {
        RaftNode* n = gid == 1 ? nodes_[i] : rafts_[i]->Get(gid);
        if (n && n->IsLeader()) return static_cast<int>(i);
      }
    }
    ADD_FAILURE() << "no leader elected";
    return -1;
  }

  /// Propose on the leader and run to completion. Returns the status.
  Status ProposeOn(int idx, std::string cmd) {
    Status result = Status::Retry("not finished");
    Spawn([](RaftNode* n, std::string cmd, Status& result) -> Task<void> {
      result = co_await n->Propose(std::move(cmd));
    }(nodes_[idx], std::move(cmd), result));
    for (int round = 0; round < 600 && result.IsRetry(); round++) {
      sched_->RunFor(10 * kMsec);
    }
    return result;
  }

  uint64_t seed_ = 42;
  std::unique_ptr<sim::Scheduler> sched_;
  std::unique_ptr<sim::Network> net_;
  std::vector<sim::Host*> hosts_;
  std::vector<std::unique_ptr<RaftHost>> rafts_;
  std::vector<std::unique_ptr<ListSm>> sms_;
  std::vector<RaftNode*> nodes_;
};

TEST_F(RaftCluster, ElectsExactlyOneLeader) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  sched_->RunFor(2 * kSec);
  int leaders = 0;
  for (auto* n : nodes_) leaders += n->IsLeader();
  EXPECT_EQ(leaders, 1);
}

TEST_F(RaftCluster, ProposeReplicatesToAll) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  EXPECT_TRUE(ProposeOn(leader, "cmd-a").ok());
  EXPECT_TRUE(ProposeOn(leader, "cmd-b").ok());
  sched_->RunFor(500 * kMsec);
  for (auto& sm : sms_) {
    ASSERT_EQ(sm->applied.size(), 2u);
    EXPECT_EQ(sm->applied[0].second, "cmd-a");
    EXPECT_EQ(sm->applied[1].second, "cmd-b");
  }
}

TEST_F(RaftCluster, FollowerRejectsPropose) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  int follower = (leader + 1) % kN;
  Status st = ProposeOn(follower, "x");
  EXPECT_TRUE(st.IsNotLeader());
  // The hint should point at the actual leader.
  EXPECT_EQ(st.message(), std::to_string(hosts_[leader]->id()));
}

TEST_F(RaftCluster, CommitRequiresMajority) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  // Cut the leader off from both followers: no further commit possible.
  for (int i = 0; i < kN; i++) {
    if (i != leader) net_->SetPartitioned(hosts_[leader]->id(), hosts_[i]->id(), true);
  }
  Status st = ProposeOn(leader, "lost");
  EXPECT_FALSE(st.ok());  // TimedOut or NotLeader after stepdown
}

TEST_F(RaftCluster, FailoverElectsNewLeaderAndKeepsData) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  EXPECT_TRUE(ProposeOn(leader, "before-crash").ok());
  hosts_[leader]->Crash();
  sched_->RunFor(2 * kSec);
  int new_leader = -1;
  for (int i = 0; i < kN; i++) {
    if (i != leader && nodes_[i]->IsLeader()) new_leader = i;
  }
  ASSERT_GE(new_leader, 0);
  EXPECT_TRUE(ProposeOn(new_leader, "after-crash").ok());
  sched_->RunFor(500 * kMsec);
  ASSERT_EQ(sms_[new_leader]->applied.size(), 2u);
  EXPECT_EQ(sms_[new_leader]->applied[0].second, "before-crash");
  EXPECT_EQ(sms_[new_leader]->applied[1].second, "after-crash");
}

TEST_F(RaftCluster, CrashedNodeRecoversStateFromDisk) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(ProposeOn(leader, "op" + std::to_string(i)).ok());
  }
  int victim = (leader + 1) % kN;
  hosts_[victim]->Crash();
  sched_->RunFor(1 * kSec);
  // More traffic while the victim is down.
  leader = AwaitLeader();
  for (int i = 5; i < 8; i++) {
    ASSERT_TRUE(ProposeOn(leader, "op" + std::to_string(i)).ok());
  }
  // Restart: state machine reset, log replayed, then caught up by leader.
  hosts_[victim]->Restart();
  sms_[victim]->applied.clear();  // simulate lost in-memory state
  Spawn([](RaftHost* rh) -> Task<void> { co_await rh->RecoverAll(); }(rafts_[victim].get()));
  sched_->RunFor(3 * kSec);
  ASSERT_EQ(sms_[victim]->applied.size(), 8u);
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(sms_[victim]->applied[i].second, "op" + std::to_string(i));
  }
}

TEST_F(RaftCluster, PartitionedMinorityLeaderStepsDownAndCatchesUp) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(ProposeOn(leader, "a").ok());
  // Partition the leader away; majority elects a new leader and commits.
  for (int i = 0; i < kN; i++) {
    if (i != leader) net_->SetPartitioned(hosts_[leader]->id(), hosts_[i]->id(), true);
  }
  sched_->RunFor(3 * kSec);
  int new_leader = -1;
  for (int i = 0; i < kN; i++) {
    if (i != leader && nodes_[i]->IsLeader()) new_leader = i;
  }
  ASSERT_GE(new_leader, 0);
  ASSERT_TRUE(ProposeOn(new_leader, "b").ok());
  // Heal. The old leader must step down and converge.
  for (int i = 0; i < kN; i++) {
    if (i != leader) net_->SetPartitioned(hosts_[leader]->id(), hosts_[i]->id(), false);
  }
  sched_->RunFor(3 * kSec);
  EXPECT_FALSE(nodes_[leader]->IsLeader() && nodes_[new_leader]->IsLeader());
  ASSERT_EQ(sms_[leader]->applied.size(), 2u);
  EXPECT_EQ(sms_[leader]->applied[1].second, "b");
}

TEST_F(RaftCluster, SnapshotCompactionTruncatesLog) {
  RaftOptions opts;
  opts.compaction_threshold = 32;
  Build(3, opts);
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(ProposeOn(leader, "e" + std::to_string(i)).ok());
  }
  sched_->RunFor(1 * kSec);
  EXPECT_GT(nodes_[leader]->log().snapshot_index(), 0u);
  EXPECT_LT(nodes_[leader]->log().last_index() - nodes_[leader]->log().snapshot_index(), 64u);
  // All state machines still saw every entry exactly once, in order.
  for (auto& sm : sms_) {
    ASSERT_EQ(sm->applied.size(), 100u);
    EXPECT_EQ(sm->applied[99].second, "e99");
  }
}

TEST_F(RaftCluster, LaggingFollowerCatchesUpViaSnapshot) {
  RaftOptions opts;
  opts.compaction_threshold = 16;
  Build(3, opts);
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  int victim = (leader + 1) % 3;
  hosts_[victim]->Crash();
  for (int i = 0; i < 80; i++) {
    leader = AwaitLeader();
    ASSERT_TRUE(ProposeOn(leader, "v" + std::to_string(i)).ok());
  }
  sched_->RunFor(1 * kSec);
  ASSERT_GT(nodes_[leader]->log().snapshot_index(), 0u);
  hosts_[victim]->Restart();
  sms_[victim]->applied.clear();
  Spawn([](RaftHost* rh) -> Task<void> { co_await rh->RecoverAll(); }(rafts_[victim].get()));
  sched_->RunFor(5 * kSec);
  ASSERT_EQ(sms_[victim]->applied.size(), 80u);
  EXPECT_EQ(sms_[victim]->applied[79].second, "v79");
}

TEST_F(RaftCluster, SingleReplicaGroupCommitsLocally) {
  Build(1, {});
  int leader = AwaitLeader();
  ASSERT_EQ(leader, 0);
  EXPECT_TRUE(ProposeOn(0, "solo").ok());
  EXPECT_EQ(sms_[0]->applied.size(), 1u);
}

TEST_F(RaftCluster, FiveReplicaClusterSurvivesTwoFailures) {
  Build(5, {});
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(ProposeOn(leader, "x").ok());
  int down = 0;
  for (int i = 0; i < 5 && down < 2; i++) {
    if (i != leader) {
      hosts_[i]->Crash();
      down++;
    }
  }
  EXPECT_TRUE(ProposeOn(leader, "y").ok());
}

TEST_F(RaftCluster, MultipleGroupsOnSameHosts) {
  std::vector<NodeId> peers = {hosts_[0]->id(), hosts_[1]->id(), hosts_[2]->id()};
  std::vector<std::unique_ptr<ListSm>> sms2;
  std::vector<RaftNode*> g2;
  for (int i = 0; i < 3; i++) {
    sms2.push_back(std::make_unique<ListSm>());
    RaftNode* n = rafts_[i]->CreateGroup(2, peers, sms2.back().get(), hosts_[i]->disk(1));
    n->Start();
    g2.push_back(n);
  }
  (void)AwaitLeader(1);
  int leader2 = AwaitLeader(2);
  ASSERT_GE(leader2, 0);
  Status result = Status::Retry("");
  Spawn([](RaftNode* n, Status& result) -> Task<void> {
    result = co_await n->Propose("group2-data");
  }(g2[leader2], result));
  for (int i = 0; i < 300 && result.IsRetry(); i++) sched_->RunFor(10 * kMsec);
  EXPECT_TRUE(result.ok());
  for (auto& sm : sms2) {
    sched_->RunFor(200 * kMsec);
    ASSERT_EQ(sm->applied.size(), 1u);
  }
  // Group 1 unaffected.
  for (auto& sm : sms_) EXPECT_EQ(sm->applied.size(), 0u);
}

TEST_F(RaftCluster, CoalescedHeartbeatsSendFewerMessages) {
  // With 8 groups across the same 3 hosts, MultiRaft sends one heartbeat
  // message per peer per interval; plain raft sends one per group per peer.
  auto measure = [&](bool coalesce) {
    Build(3, {});
    std::vector<NodeId> peers = {hosts_[0]->id(), hosts_[1]->id(), hosts_[2]->id()};
    std::vector<std::unique_ptr<ListSm>> extra;
    for (GroupId g = 2; g <= 8; g++) {
      for (int i = 0; i < 3; i++) {
        extra.push_back(std::make_unique<ListSm>());
        rafts_[i]->set_coalesce_heartbeats(coalesce);
        RaftNode* n = rafts_[i]->CreateGroup(g, peers, extra.back().get(),
                                             hosts_[i]->disk(static_cast<int>(g % 4)));
        n->Start();
      }
    }
    for (int i = 0; i < 3; i++) rafts_[i]->set_coalesce_heartbeats(coalesce);
    for (GroupId g = 1; g <= 8; g++) AwaitLeader(g);
    uint64_t before = 0;
    for (auto& r : rafts_) before += r->heartbeat_msgs_sent();
    sched_->RunFor(5 * kSec);
    uint64_t after = 0;
    for (auto& r : rafts_) after += r->heartbeat_msgs_sent();
    return after - before;
  };
  uint64_t coalesced = measure(true);
  uint64_t separate = measure(false);
  EXPECT_GT(separate, coalesced * 2);
}

TEST_F(RaftCluster, ManySequentialProposalsAllApplyInOrder) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(ProposeOn(leader, std::to_string(i)).ok());
  }
  sched_->RunFor(1 * kSec);
  for (auto& sm : sms_) {
    ASSERT_EQ(sm->applied.size(), 50u);
    for (int i = 0; i < 50; i++) EXPECT_EQ(sm->applied[i].second, std::to_string(i));
    // Indices strictly increasing.
    for (size_t k = 1; k < sm->applied.size(); k++) {
      EXPECT_GT(sm->applied[k].first, sm->applied[k - 1].first);
    }
  }
}

TEST_F(RaftCluster, ConcurrentProposalsAllCommit) {
  int leader = AwaitLeader();
  ASSERT_GE(leader, 0);
  int ok = 0, fail = 0;
  for (int i = 0; i < 20; i++) {
    Spawn([](RaftNode* n, int i, int& ok, int& fail) -> Task<void> {
      Status st = co_await n->Propose("c" + std::to_string(i));
      (st.ok() ? ok : fail)++;
    }(nodes_[leader], i, ok, fail));
  }
  sched_->RunFor(5 * kSec);
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(fail, 0);
  for (auto& sm : sms_) EXPECT_EQ(sm->applied.size(), 20u);
}

}  // namespace
}  // namespace cfs::raft
